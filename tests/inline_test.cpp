// Subroutine parsing + inlining tests (the paper's multi-procedure future
// work): bindings, fresh locals, nested calls, error cases, and the
// end-to-end equivalence of a subroutine-structured program with its
// hand-inlined form.
#include <gtest/gtest.h>

#include "corpus/corpus.hpp"
#include "driver/tool.hpp"
#include "fortran/inline.hpp"
#include "fortran/parser.hpp"
#include "fortran/sema.hpp"
#include "pcfg/pcfg.hpp"

namespace al::fortran {
namespace {

Program inline_ok(std::string_view src) {
  Program p = parse_and_check(src);
  DiagnosticEngine diags;
  inline_calls(p, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.str();
  return p;
}

TEST(Subroutines, ParseUnitAndParams) {
  Program p = parse_and_check(
      "      program main\n"
      "      parameter (n = 8)\n"
      "      real a(n)\n"
      "      call scalev(a, n, 2.0)\n"
      "      end\n"
      "      subroutine scalev(v, m, factor)\n"
      "      real v(64)\n"
      "      integer m, i\n"
      "      real factor\n"
      "      do i = 1, m\n"
      "        v(i) = v(i)*factor\n"
      "      enddo\n"
      "      end\n");
  ASSERT_EQ(p.procedures.size(), 1u);
  const Procedure& proc = p.procedures[0];
  EXPECT_EQ(proc.name, "scalev");
  ASSERT_EQ(proc.params.size(), 3u);
  EXPECT_EQ(proc.symbols.at(proc.params[0]).kind, SymbolKind::Array);
  EXPECT_EQ(proc.symbols.at(proc.params[1]).type, ScalarType::Integer);
  ASSERT_EQ(p.body.size(), 1u);
  EXPECT_EQ(p.body[0]->kind, StmtKind::Call);
  EXPECT_TRUE(has_calls(p));
}

TEST(Subroutines, CallArityChecked) {
  DiagnosticEngine diags;
  auto p = parse_program(
      "      real a(8)\n"
      "      call f(a)\n"
      "      end\n"
      "      subroutine f(v, m)\n"
      "      real v(8)\n"
      "      v(1) = m\n"
      "      end\n",
      diags);
  ASSERT_TRUE(p.has_value());
  analyze(*p, diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Subroutines, UnknownCalleeIsError) {
  DiagnosticEngine diags;
  auto p = parse_program("      call nowhere(1)\n      end\n", diags);
  ASSERT_TRUE(p.has_value());
  analyze(*p, diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Subroutines, ArrayVsScalarBindingChecked) {
  DiagnosticEngine diags;
  auto p = parse_program(
      "      real a(8)\n"
      "      x = 1.0\n"
      "      call f(x)\n"
      "      end\n"
      "      subroutine f(v)\n"
      "      real v(8)\n"
      "      v(1) = 0.0\n"
      "      end\n",
      diags);
  ASSERT_TRUE(p.has_value());
  analyze(*p, diags);
  EXPECT_TRUE(diags.has_errors());  // scalar passed to an array formal
}

TEST(Subroutines, RankMismatchChecked) {
  DiagnosticEngine diags;
  auto p = parse_program(
      "      real a(8,8)\n"
      "      call f(a)\n"
      "      end\n"
      "      subroutine f(v)\n"
      "      real v(8)\n"
      "      v(1) = 0.0\n"
      "      end\n",
      diags);
  ASSERT_TRUE(p.has_value());
  analyze(*p, diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Inline, ArrayAndScalarRenaming) {
  Program p = inline_ok(
      "      program main\n"
      "      parameter (n = 8)\n"
      "      real a(n)\n"
      "      integer k\n"
      "      k = n\n"
      "      call fill(a, k)\n"
      "      end\n"
      "      subroutine fill(v, m)\n"
      "      real v(8)\n"
      "      integer m, i\n"
      "      do i = 1, m\n"
      "        v(i) = 1.0\n"
      "      enddo\n"
      "      end\n");
  EXPECT_FALSE(has_calls(p));
  // The inlined loop writes the CALLER's array.
  const std::string printed = to_string(p);
  EXPECT_NE(printed.find("a("), std::string::npos);
  EXPECT_EQ(printed.find("v("), std::string::npos);
  EXPECT_NE(printed.find("k"), std::string::npos);  // scalar alias
}

TEST(Inline, ExpressionActualSubstituted) {
  Program p = inline_ok(
      "      parameter (n = 8)\n"
      "      real a(n)\n"
      "      call fill(a, n/2)\n"
      "      end\n"
      "      subroutine fill(v, m)\n"
      "      real v(8)\n"
      "      integer m, i\n"
      "      do i = 1, m\n"
      "        v(i) = 1.0\n"
      "      enddo\n"
      "      end\n");
  // Loop bound became the expression n/2.
  const std::string printed = to_string(p);
  EXPECT_NE(printed.find("(n/2)"), std::string::npos);
}

TEST(Inline, ExpressionActualAssignedIsError) {
  Program p = parse_and_check(
      "      real a(8)\n"
      "      call f(a, 1+2)\n"
      "      end\n"
      "      subroutine f(v, m)\n"
      "      real v(8)\n"
      "      integer m\n"
      "      m = 3\n"
      "      v(1) = m\n"
      "      end\n");
  DiagnosticEngine diags;
  inline_calls(p, diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Inline, LocalsGetFreshNames) {
  Program p = inline_ok(
      "      real a(8)\n"
      "      t = 5.0\n"
      "      call f(a)\n"
      "      end\n"
      "      subroutine f(v)\n"
      "      real v(8)\n"
      "      real t\n"
      "      t = 1.0\n"
      "      v(1) = t\n"
      "      end\n");
  // The callee's local t must not collide with the caller's t.
  const int caller_t = p.symbols.lookup("t");
  ASSERT_GE(caller_t, 0);
  int fresh = 0;
  for (const Symbol& s : p.symbols.all()) {
    if (s.name.rfind("t_f", 0) == 0) ++fresh;
  }
  EXPECT_EQ(fresh, 1);
}

TEST(Inline, NestedCallsExpandToFixpoint) {
  Program p = inline_ok(
      "      real a(8)\n"
      "      call outer(a)\n"
      "      end\n"
      "      subroutine outer(v)\n"
      "      real v(8)\n"
      "      call inner(v)\n"
      "      call inner(v)\n"
      "      end\n"
      "      subroutine inner(w)\n"
      "      real w(8)\n"
      "      integer i\n"
      "      do i = 1, 8\n"
      "        w(i) = w(i) + 1.0\n"
      "      enddo\n"
      "      end\n");
  EXPECT_FALSE(has_calls(p));
  // Two loops appear (inner inlined twice).
  int loops = 0;
  for (const auto& s : p.body) {
    if (s->kind == StmtKind::Do) ++loops;
  }
  EXPECT_EQ(loops, 2);
}

TEST(Inline, RecursionIsRejected) {
  Program p = parse_and_check(
      "      real a(8)\n"
      "      call f(a)\n"
      "      end\n"
      "      subroutine f(v)\n"
      "      real v(8)\n"
      "      call f(v)\n"
      "      end\n");
  DiagnosticEngine diags;
  inline_calls(p, diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Inline, CallInsideLoopBody) {
  Program p = inline_ok(
      "      parameter (n = 8)\n"
      "      real a(n)\n"
      "      do it = 1, 10\n"
      "        call f(a)\n"
      "      enddo\n"
      "      end\n"
      "      subroutine f(v)\n"
      "      real v(8)\n"
      "      integer i\n"
      "      do i = 1, 8\n"
      "        v(i) = v(i)*0.5\n"
      "      enddo\n"
      "      end\n");
  EXPECT_FALSE(has_calls(p));
  // The phase now sits inside the time loop: frequency 10.
  pcfg::Pcfg g = pcfg::Pcfg::build(p);
  ASSERT_EQ(g.num_phases(), 1);
  EXPECT_DOUBLE_EQ(g.frequency(0), 10.0);
}

TEST(Inline, SubroutineErlebacherMatchesInlinedAnalysis) {
  // A subroutine-structured 3-D sweep program must produce the same phase
  // structure and the same selection as its (automatically) inlined form.
  const char* src =
      "      program sweeps\n"
      "      parameter (n = 16)\n"
      "      real f(n,n,n), dux(n,n,n), duy(n,n,n)\n"
      "      integer i, j, k\n"
      "        do k = 1, n\n"
      "          do j = 1, n\n"
      "            do i = 1, n\n"
      "              f(i,j,k) = 0.1*i + 0.2*j + 0.3*k\n"
      "            enddo\n          enddo\n        enddo\n"
      "      call sweepx(dux, f, n)\n"
      "      call sweepy(duy, f, n)\n"
      "      end\n"
      "      subroutine sweepx(du, g, m)\n"
      "      real du(16,16,16), g(16,16,16)\n"
      "      integer m, i, j, k\n"
      "        do k = 1, m\n"
      "          do j = 1, m\n"
      "            do i = 2, m\n"
      "              du(i,j,k) = du(i,j,k) - 0.4*du(i-1,j,k) + g(i,j,k)\n"
      "            enddo\n          enddo\n        enddo\n"
      "      end\n"
      "      subroutine sweepy(du, g, m)\n"
      "      real du(16,16,16), g(16,16,16)\n"
      "      integer m, i, j, k\n"
      "        do k = 1, m\n"
      "          do j = 2, m\n"
      "            do i = 1, m\n"
      "              du(i,j,k) = du(i,j,k) - 0.4*du(i,j-1,k) + g(i,j,k)\n"
      "            enddo\n          enddo\n        enddo\n"
      "      end\n";
  driver::ToolOptions opts;
  opts.procs = 8;
  auto result = driver::run_tool(src, opts);
  EXPECT_EQ(result->pcfg.num_phases(), 3);
  // The x sweep carries a dim-1 recurrence, the y sweep a dim-2 one; both
  // came through the inliner with their alignments intact.
  EXPECT_GT(result->selection.total_cost_us, 0.0);
  EXPECT_EQ(result->templ.rank, 3);
}

} // namespace
} // namespace al::fortran
