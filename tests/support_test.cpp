#include <gtest/gtest.h>

#include "support/contracts.hpp"
#include "support/diagnostics.hpp"
#include "support/metrics.hpp"
#include "support/text.hpp"

namespace al {
namespace {

TEST(Text, ToLower) {
  EXPECT_EQ(to_lower("AbC123"), "abc123");
  EXPECT_EQ(to_lower(""), "");
}

TEST(Text, Trim) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("\t\n"), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(Text, Split) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(Text, StartsWithCi) {
  EXPECT_TRUE(starts_with_ci("!AL$ prob", "!al$"));
  EXPECT_FALSE(starts_with_ci("!a", "!al$"));
}

TEST(Text, FormatFixed) {
  EXPECT_EQ(format_fixed(1.23456, 2), "1.23");
  EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
}

TEST(Text, Padding) {
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("abcdef", 3), "abc");
}

TEST(Contracts, ViolationThrows) {
  EXPECT_THROW(AL_EXPECTS(false), ContractViolation);
  EXPECT_NO_THROW(AL_EXPECTS(true));
  EXPECT_THROW(AL_ASSERT(1 == 2), ContractViolation);
}

TEST(Diagnostics, CollectsAndCounts) {
  DiagnosticEngine d;
  EXPECT_FALSE(d.has_errors());
  d.warning(SourceLoc{1, 2}, "w");
  d.error(SourceLoc{3, 4}, "e");
  d.note(SourceLoc{}, "n");
  EXPECT_TRUE(d.has_errors());
  EXPECT_EQ(d.error_count(), 1u);
  EXPECT_EQ(d.all().size(), 3u);
  const std::string s = d.str();
  EXPECT_NE(s.find("error 3:4: e"), std::string::npos);
  EXPECT_NE(s.find("warning 1:2: w"), std::string::npos);
  EXPECT_NE(s.find("<unknown>"), std::string::npos);
}

TEST(MetricsScope, CapturesOnlyIncrementsInsideTheScope) {
  support::Metrics& m = support::Metrics::instance();
  m.counter("scope_test.a").add();  // outside any scope: global only
  {
    support::MetricsScope scope;
    EXPECT_EQ(support::MetricsScope::current(), &scope);
    m.counter("scope_test.a").add(3);
    m.counter("scope_test.b").add();
    EXPECT_EQ(scope.delta("scope_test.a"), 3u);
    EXPECT_EQ(scope.delta("scope_test.b"), 1u);
    EXPECT_EQ(scope.delta("scope_test.never"), 0u);

    const std::vector<support::MetricsScope::Delta> deltas = scope.deltas();
    // Sorted by name, only touched counters.
    bool saw_a = false;
    for (const support::MetricsScope::Delta& d : deltas)
      if (d.name == "scope_test.a") saw_a = true;
    EXPECT_TRUE(saw_a);
  }
  EXPECT_EQ(support::MetricsScope::current(), nullptr);
  // The global counter kept every increment, scoped or not.
  EXPECT_GE(m.counter("scope_test.a").value(), 4u);
}

TEST(MetricsScope, NestedScopesFoldIntoTheParent) {
  support::Metrics& m = support::Metrics::instance();
  support::MetricsScope outer;
  m.counter("scope_test.nest").add();
  {
    support::MetricsScope inner;
    m.counter("scope_test.nest").add(2);
    EXPECT_EQ(inner.delta("scope_test.nest"), 2u);
    // The outer scope has not seen the inner increments yet.
    EXPECT_EQ(outer.delta("scope_test.nest"), 1u);
  }
  // On destruction the inner tally folds into its parent: the outer scope
  // accounts for everything that happened while it was active.
  EXPECT_EQ(outer.delta("scope_test.nest"), 3u);
}

} // namespace
} // namespace al
