#include <gtest/gtest.h>

#include "support/contracts.hpp"
#include "support/diagnostics.hpp"
#include "support/text.hpp"

namespace al {
namespace {

TEST(Text, ToLower) {
  EXPECT_EQ(to_lower("AbC123"), "abc123");
  EXPECT_EQ(to_lower(""), "");
}

TEST(Text, Trim) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("\t\n"), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(Text, Split) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(Text, StartsWithCi) {
  EXPECT_TRUE(starts_with_ci("!AL$ prob", "!al$"));
  EXPECT_FALSE(starts_with_ci("!a", "!al$"));
}

TEST(Text, FormatFixed) {
  EXPECT_EQ(format_fixed(1.23456, 2), "1.23");
  EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
}

TEST(Text, Padding) {
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("abcdef", 3), "abc");
}

TEST(Contracts, ViolationThrows) {
  EXPECT_THROW(AL_EXPECTS(false), ContractViolation);
  EXPECT_NO_THROW(AL_EXPECTS(true));
  EXPECT_THROW(AL_ASSERT(1 == 2), ContractViolation);
}

TEST(Diagnostics, CollectsAndCounts) {
  DiagnosticEngine d;
  EXPECT_FALSE(d.has_errors());
  d.warning(SourceLoc{1, 2}, "w");
  d.error(SourceLoc{3, 4}, "e");
  d.note(SourceLoc{}, "n");
  EXPECT_TRUE(d.has_errors());
  EXPECT_EQ(d.error_count(), 1u);
  EXPECT_EQ(d.all().size(), 3u);
  const std::string s = d.str();
  EXPECT_NE(s.find("error 3:4: e"), std::string::npos);
  EXPECT_NE(s.find("warning 1:2: w"), std::string::npos);
  EXPECT_NE(s.find("<unknown>"), std::string::npos);
}

} // namespace
} // namespace al
