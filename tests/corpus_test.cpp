// Corpus tests: the generated programs parse, the test-case grids have the
// paper's counts, the structural properties hold for every generated size.
#include <gtest/gtest.h>

#include "corpus/corpus.hpp"
#include "driver/tool.hpp"
#include "fortran/inline.hpp"
#include "fortran/parser.hpp"
#include "pcfg/pcfg.hpp"

namespace al::corpus {
namespace {

TEST(Corpus, CaseCountsMatchThePaper) {
  EXPECT_EQ(adi_cases().size(), 40u);
  EXPECT_EQ(erlebacher_cases().size(), 21u);
  EXPECT_EQ(tomcatv_cases().size(), 19u);
  EXPECT_EQ(shallow_cases().size(), 19u);
  EXPECT_EQ(all_cases().size(), 99u);  // the paper's 99 experiments
}

TEST(Corpus, CaseNamesAreDescriptive) {
  const TestCase c{"adi", 256, Dtype::DoublePrecision, 16};
  EXPECT_EQ(c.name(), "adi n=256 double P=16");
}

TEST(Corpus, SourceForDispatches) {
  for (const char* prog : {"adi", "erlebacher", "tomcatv", "shallow"}) {
    const TestCase c{prog, 32, Dtype::Real, 4};
    const std::string src = source_for(c);
    EXPECT_NE(src.find(std::string("program ") + prog), std::string::npos);
  }
  EXPECT_THROW((void)source_for(TestCase{"nope", 8, Dtype::Real, 2}),
               std::invalid_argument);
}

TEST(Corpus, TypeKeywordSubstitution) {
  EXPECT_NE(adi_source(16, Dtype::Real).find("real x(n,n)"), std::string::npos);
  EXPECT_NE(adi_source(16, Dtype::DoublePrecision).find("double precision x(n,n)"),
            std::string::npos);
}

class CorpusPrograms : public ::testing::TestWithParam<const char*> {};

TEST_P(CorpusPrograms, ParsesCleanlyAtSeveralSizes) {
  for (long n : {16L, 64L}) {
    const TestCase c{GetParam(), n, Dtype::DoublePrecision, 4};
    EXPECT_NO_THROW({
      fortran::Program p = fortran::parse_and_check(source_for(c));
      EXPECT_FALSE(p.body.empty());
    }) << c.name();
  }
}

TEST_P(CorpusPrograms, PhaseCountIsSizeIndependent) {
  const TestCase small{GetParam(), 16, Dtype::DoublePrecision, 4};
  const TestCase large{GetParam(), 128, Dtype::DoublePrecision, 4};
  fortran::Program ps = fortran::parse_and_check(source_for(small));
  fortran::Program pl = fortran::parse_and_check(source_for(large));
  EXPECT_EQ(pcfg::Pcfg::build(ps).num_phases(), pcfg::Pcfg::build(pl).num_phases());
}

INSTANTIATE_TEST_SUITE_P(All, CorpusPrograms,
                         ::testing::Values("adi", "erlebacher", "tomcatv", "shallow"));

TEST(Corpus, PaperPhaseCounts) {
  auto phases = [](const std::string& src) {
    fortran::Program p = fortran::parse_and_check(src);
    return pcfg::Pcfg::build(p).num_phases();
  };
  EXPECT_EQ(phases(adi_source(32, Dtype::DoublePrecision)), 9);
  EXPECT_EQ(phases(erlebacher_source(16, Dtype::DoublePrecision)), 40);
  EXPECT_EQ(phases(tomcatv_source(32, Dtype::DoublePrecision)), 17);
  EXPECT_EQ(phases(shallow_source(32, Dtype::Real)), 28);
}

TEST(Corpus, TomcatvBranchAnnotation) {
  const std::string src = tomcatv_source(32, Dtype::DoublePrecision, 10, 0.75);
  EXPECT_NE(src.find("!al$ prob(0.75)"), std::string::npos);
}

TEST(Corpus, ModularErlebacherInlinesToTheSameStructure) {
  // The subroutine-per-sweep version must reduce to the hand-inlined
  // version's 40 phases through the inliner, with the same template and
  // alignment structure.
  fortran::Program mod =
      fortran::parse_and_check(erlebacher_modular_source(16, Dtype::DoublePrecision));
  ASSERT_EQ(mod.procedures.size(), 3u);
  DiagnosticEngine diags;
  fortran::inline_calls(mod, diags);
  ASSERT_FALSE(diags.has_errors()) << diags.str();
  EXPECT_EQ(pcfg::Pcfg::build(mod).num_phases(), 40);
}

TEST(Corpus, ModularErlebacherSelectsLikeTheInlinedOne) {
  corpus::TestCase c{"erlebacher", 32, Dtype::DoublePrecision, 8};
  driver::ToolOptions opts;
  opts.procs = 8;
  auto inlined = driver::run_tool(erlebacher_source(32, Dtype::DoublePrecision), opts);
  auto modular =
      driver::run_tool(erlebacher_modular_source(32, Dtype::DoublePrecision), opts);
  ASSERT_EQ(inlined->pcfg.num_phases(), modular->pcfg.num_phases());
  // Same cost structure within numerical noise (symbol numbering differs).
  EXPECT_NEAR(modular->selection.total_cost_us, inlined->selection.total_cost_us,
              1e-6 * (1.0 + inlined->selection.total_cost_us));
}

TEST(Corpus, GridsRespectNodeMemory) {
  // No grid point exceeds the 8 MB/node iPSC/860 budget by design: check
  // the biggest tomcatv case (7 double arrays of n^2 over P nodes).
  for (const TestCase& c : tomcatv_cases()) {
    const double bytes_per_node = 7.0 * c.n * c.n * 8.0 / c.procs;
    EXPECT_LT(bytes_per_node, 8.0 * 1024 * 1024) << c.name();
  }
}

} // namespace
} // namespace al::corpus
