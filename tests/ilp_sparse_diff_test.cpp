// Golden differential suite for the sparse revised-simplex core (DESIGN.md
// section 15): the sparse Markowitz-LU + eta-update engine and the legacy
// dense-inverse oracle must be answer-identical -- same statuses, same
// objectives, same selections -- on random LPs, random 0-1 MIPs (with
// exhaustive enumeration as a third oracle), the paper corpus, and a large
// set of generated programs. Also pins the refactorization machinery the
// sparse core rides on: the scheduled-interval counter and the sampled
// basis-residual drift probe both surface through
// SimplexInstance::refactorizations().
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "corpus/corpus.hpp"
#include "gen/differential.hpp"
#include "gen/generator.hpp"
#include "gen/rng.hpp"
#include "ilp/branch_and_bound.hpp"
#include "ilp/simplex.hpp"

namespace al::ilp {
namespace {

bool close(double a, double b, double tol = 1e-6) {
  return std::abs(a - b) <= tol * (1.0 + std::min(std::abs(a), std::abs(b)));
}

/// A random bounded-variable LP: every column lives in [0, ub] so the
/// problem is never unbounded; rows mix LE/GE/EQ so infeasible instances
/// occur too (both cores must agree on those as well).
Model random_lp(std::mt19937& rng, int n, int m) {
  std::uniform_real_distribution<double> coef(-4.0, 4.0);
  std::uniform_real_distribution<double> ubd(0.5, 3.0);
  std::uniform_int_distribution<int> nnz_d(2, std::max(2, n / 2));
  std::uniform_int_distribution<int> var_d(0, n - 1);
  std::uniform_int_distribution<int> rel_d(0, 9);
  Model model(rng() % 2 == 0 ? Sense::Minimize : Sense::Maximize);
  for (int j = 0; j < n; ++j) {
    model.add_continuous("x" + std::to_string(j), 0.0, ubd(rng), coef(rng));
  }
  for (int r = 0; r < m; ++r) {
    const int nnz = nnz_d(rng);
    std::vector<Term> terms;
    double row_max = 0.0;  // activity with every var at its upper bound
    for (int k = 0; k < nnz; ++k) {
      const int v = var_d(rng);
      const double a = coef(rng);
      terms.push_back({v, a});
      if (a > 0.0) row_max += a * model.variable(v).upper;
    }
    // Bias the rhs toward feasibility without guaranteeing it.
    std::uniform_real_distribution<double> rhs_d(-1.0, std::max(1.0, row_max));
    const int pick = rel_d(rng);
    const Rel rel = pick < 6 ? Rel::LE : (pick < 8 ? Rel::GE : Rel::EQ);
    model.add_constraint("r" + std::to_string(r), std::move(terms), rel, rhs_d(rng));
  }
  return model;
}

/// A random packing LP: positive data, LE rows, maximize. x = 0 is always
/// feasible and the bounds keep it finite, so every instance is Optimal --
/// the shape the refactorization tests need a guaranteed pivot path on.
Model random_packing_lp(std::mt19937& rng, int n, int m) {
  std::uniform_real_distribution<double> coef(0.2, 3.0);
  std::uniform_real_distribution<double> ubd(0.5, 3.0);
  std::uniform_int_distribution<int> nnz_d(2, std::max(2, n / 3));
  std::uniform_int_distribution<int> var_d(0, n - 1);
  Model model(Sense::Maximize);
  for (int j = 0; j < n; ++j)
    model.add_continuous("x" + std::to_string(j), 0.0, ubd(rng), coef(rng));
  for (int r = 0; r < m; ++r) {
    const int nnz = nnz_d(rng);
    std::vector<Term> terms;
    double row_max = 0.0;
    for (int k = 0; k < nnz; ++k) {
      const int v = var_d(rng);
      const double a = coef(rng);
      terms.push_back({v, a});
      row_max += a * model.variable(v).upper;
    }
    std::uniform_real_distribution<double> rhs_d(0.3 * row_max, 0.8 * row_max);
    model.add_constraint("r" + std::to_string(r), std::move(terms), Rel::LE,
                         rhs_d(rng));
  }
  return model;
}

/// A random small 0-1 model for the three-way MIP oracle test.
Model random_binary_mip(std::mt19937& rng, int n, int m) {
  std::uniform_real_distribution<double> coef(-3.0, 3.0);
  std::uniform_int_distribution<int> nnz_d(2, n);
  std::uniform_int_distribution<int> var_d(0, n - 1);
  Model model(Sense::Minimize);
  for (int j = 0; j < n; ++j)
    model.add_binary("b" + std::to_string(j), coef(rng));
  for (int r = 0; r < m; ++r) {
    const int nnz = nnz_d(rng);
    std::vector<Term> terms;
    double pos = 0.0;
    for (int k = 0; k < nnz; ++k) {
      const double a = coef(rng);
      terms.push_back({var_d(rng), a});
      if (a > 0.0) pos += a;
    }
    std::uniform_real_distribution<double> rhs_d(-0.5, pos);
    model.add_constraint("r" + std::to_string(r), std::move(terms), Rel::LE,
                         rhs_d(rng));
  }
  return model;
}

TEST(SparseDiff, RandomLpsMatchDenseOracle) {
  std::mt19937 rng(2026);
  int optimal = 0, infeasible = 0;
  for (int t = 0; t < 200; ++t) {
    const int n = 3 + static_cast<int>(rng() % 18);
    const int m = 2 + static_cast<int>(rng() % 12);
    const Model model = random_lp(rng, n, m);
    SimplexOptions sparse;
    sparse.core = LpCore::Sparse;
    SimplexOptions dense;
    dense.core = LpCore::Dense;
    const LpResult rs = solve_lp(model, sparse);
    const LpResult rd = solve_lp(model, dense);
    ASSERT_EQ(rs.status, rd.status) << "trial " << t;
    if (rs.status == SolveStatus::Optimal) {
      ++optimal;
      EXPECT_TRUE(close(rs.objective, rd.objective))
          << "trial " << t << ": sparse " << rs.objective << " dense "
          << rd.objective;
      EXPECT_TRUE(model.is_feasible(rs.x)) << "trial " << t;
      // Pricing strategy changes the pivot path, never the answer.
      SimplexOptions full = sparse;
      full.partial_pricing = false;
      const LpResult rf = solve_lp(model, full);
      ASSERT_EQ(rf.status, SolveStatus::Optimal) << "trial " << t;
      EXPECT_TRUE(close(rf.objective, rs.objective)) << "trial " << t;
    } else {
      ++infeasible;
    }
  }
  // The distribution must actually exercise both outcomes.
  EXPECT_GT(optimal, 50);
  EXPECT_GT(infeasible, 10);
}

TEST(SparseDiff, RandomMipsMatchDenseAndEnumeration) {
  std::mt19937 rng(4096);
  for (int t = 0; t < 40; ++t) {
    const int n = 3 + static_cast<int>(rng() % 9);  // <= 11 binaries
    const int m = 2 + static_cast<int>(rng() % 6);
    const Model model = random_binary_mip(rng, n, m);
    MipOptions sparse;
    sparse.lp_core = LpCore::Sparse;
    MipOptions dense;
    dense.lp_core = LpCore::Dense;
    const MipResult rs = solve_mip(model, sparse);
    const MipResult rd = solve_mip(model, dense);
    const MipResult oracle = solve_by_enumeration(model);
    ASSERT_EQ(rs.status, oracle.status) << "trial " << t;
    ASSERT_EQ(rd.status, oracle.status) << "trial " << t;
    if (has_solution(oracle.status)) {
      EXPECT_TRUE(close(rs.objective, oracle.objective))
          << "trial " << t << ": sparse " << rs.objective << " enum "
          << oracle.objective;
      EXPECT_TRUE(close(rd.objective, oracle.objective))
          << "trial " << t << ": dense " << rd.objective << " enum "
          << oracle.objective;
      EXPECT_TRUE(model.is_feasible(rs.x)) << "trial " << t;
      EXPECT_TRUE(model.is_feasible(rd.x)) << "trial " << t;
    }
  }
}

// The scheduled refactorization interval: with a tiny interval a solve that
// takes more than a handful of pivots must rebuild the factorization at
// least once, and the rebuilt basis must finish on the same optimum.
TEST(SparseCore, ScheduledRefactorizationCounterAdvances) {
  std::mt19937 rng(11);
  const Model model = random_packing_lp(rng, 40, 25);
  SimplexOptions base;
  base.core = LpCore::Sparse;
  const LpResult ref = solve_lp(model, base);
  ASSERT_EQ(ref.status, SolveStatus::Optimal);

  SimplexOptions tight = base;
  tight.refactor_interval = 2;
  SimplexInstance inst(model, tight);
  const std::vector<Variable>& vars = model.variables();
  std::vector<double> lower, upper;
  for (const Variable& v : vars) {
    lower.push_back(v.lower);
    upper.push_back(v.upper);
  }
  const LpResult r = inst.solve(lower, upper);
  ASSERT_EQ(r.status, SolveStatus::Optimal);
  EXPECT_TRUE(close(r.objective, ref.objective));
  EXPECT_GE(inst.refactorizations(), 1)
      << "a 2-pivot interval over " << r.iterations
      << " pivots must have refactorized";
}

// Warm restarts keep the counter monotone: bound flips re-solved through the
// dual simplex still run the scheduled-refactor policy.
TEST(SparseCore, WarmRestartsKeepRefactoring) {
  std::mt19937 rng(13);
  const Model model = random_packing_lp(rng, 30, 18);
  SimplexOptions tight;
  tight.core = LpCore::Sparse;
  tight.refactor_interval = 2;
  SimplexInstance inst(model, tight);
  std::vector<double> lower, upper;
  for (const Variable& v : model.variables()) {
    lower.push_back(v.lower);
    upper.push_back(v.upper);
  }
  const LpResult first = inst.solve(lower, upper);
  ASSERT_EQ(first.status, SolveStatus::Optimal);
  const long after_first = inst.refactorizations();
  // Tighten a few columns one at a time (the branch-and-bound access
  // pattern) and re-solve warm.
  long pivots = first.iterations;
  for (int j = 0; j < 6; ++j) {
    std::vector<double> u = upper;
    u[static_cast<std::size_t>(j)] = 0.0;
    const LpResult r = inst.solve(lower, u);
    ASSERT_TRUE(r.status == SolveStatus::Optimal ||
                r.status == SolveStatus::Infeasible)
        << to_string(r.status);
    pivots += r.iterations;
  }
  EXPECT_GE(inst.refactorizations(), after_first);
  if (pivots > 16) {
    EXPECT_GT(inst.refactorizations(), after_first)
        << pivots << " total pivots at interval 2 must refactorize again";
  }
}

// --------------------------------------------------------------------------
// Golden end-to-end differential: corpus + generated programs, sparse core
// against the dense oracle (D7), selections identical.

TEST(SparseDiff, CorpusSelectionsMatchDenseOracle) {
  for (const char* prog : {"adi", "erlebacher", "tomcatv", "shallow"}) {
    const corpus::TestCase c{prog, 24,
                             std::string(prog) == "shallow"
                                 ? corpus::Dtype::Real
                                 : corpus::Dtype::DoublePrecision,
                             4};
    gen::DiffOptions d;
    d.check_lp_cores = true;
    d.check_run_cache = false;  // D6 has its own suite
    d.alt_threads = 0;          // D5 has its own suite
    d.check_oracle = false;     // D8 has its own suite (gen + fuzz smoke)
    const gen::DiffResult res = gen::check_differential(corpus::source_for(c), d);
    EXPECT_TRUE(res.ok) << prog << ": " << res.failure;
  }
}

TEST(SparseDiff, GeneratedProgramsMatchDenseOracle) {
  gen::Rng rng(777);
  gen::DiffOptions d;
  d.check_lp_cores = true;
  d.check_run_cache = false;
  d.alt_threads = 0;
  d.check_oracle = false;  // D8 has its own suite (gen + fuzz smoke)
  constexpr int kPrograms = 500;
  for (int k = 0; k < kPrograms; ++k) {
    const gen::ProgramSpec spec = gen::random_spec(rng);
    const std::string source = gen::emit_fortran(spec);
    const gen::DiffResult res = gen::check_differential(source, d);
    ASSERT_TRUE(res.ok) << "program " << k << ": " << res.failure << "\n"
                        << source;
  }
}

} // namespace
} // namespace al::ilp
