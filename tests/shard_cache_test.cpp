// The in-process halves of the shard architecture (DESIGN.md section 17):
// the request arena's reset/reuse contract, the mergeable latency
// histogram, the cross-shard shm cache's slot/lock/eviction behaviour, and
// the RunCache L1 <-> ShmRunCache L2 layering -- including a multi-threaded
// lane where two L1s (stand-ins for two shard processes, same memory
// semantics) hammer one segment. Everything here is thread-based, so the
// whole binary runs under the "tsan" ctest label; the fork-based fleet
// tests live in shard_test.cpp, which deliberately does not.
#include <gtest/gtest.h>

#include <atomic>
#include <memory_resource>
#include <string>
#include <thread>
#include <vector>

#include "corpus/corpus.hpp"
#include "perf/run_cache.hpp"
#include "perf/shm_cache.hpp"
#include "service/protocol.hpp"
#include "support/arena.hpp"
#include "support/histogram.hpp"
#include "support/json.hpp"

namespace al {
namespace {

// ---------------------------------------------------------------------------
// Arena
// ---------------------------------------------------------------------------

TEST(Arena, BumpsAlignsAndResets) {
  support::Arena arena(/*initial_block_bytes=*/256);
  void* a = arena.allocate(10, 1);
  void* b = arena.allocate(32, 32);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 32, 0u);
  EXPECT_EQ(arena.stats().alloc_calls, 2u);
  EXPECT_GE(arena.stats().bytes_in_use, 42u);

  arena.reset();
  EXPECT_EQ(arena.stats().resets, 1u);
  EXPECT_EQ(arena.stats().bytes_in_use, 0u);
  // The block is retained: allocating again reuses it, no new block.
  const std::uint64_t blocks = arena.stats().block_allocs;
  void* c = arena.allocate(10, 1);
  EXPECT_EQ(c, a);  // same block, same offset: the pool actually rewound
  EXPECT_EQ(arena.stats().block_allocs, blocks);
}

TEST(Arena, GrowsByDoublingAndServesOversize) {
  support::Arena arena(/*initial_block_bytes=*/64);
  // Oversize request (> current block, > doubling) gets its own block.
  void* big = arena.allocate(1u << 18, 8);
  ASSERT_NE(big, nullptr);
  EXPECT_GE(arena.stats().bytes_reserved, 1u << 18);
  // pmr plumbing: a vector on the arena works end to end.
  std::pmr::vector<int> v(&arena);
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_EQ(v[999], 999);
}

// The satellite acceptance: 1000 sequential requests through the real
// request decoder on ONE arena. After warm-up the pool must stop acquiring
// blocks -- parse cost becomes pointer bumps only.
TEST(Arena, ThousandRequestParseReuse) {
  const corpus::TestCase c{"adi", 32, corpus::Dtype::DoublePrecision, 4};
  std::string line;
  {
    support::JsonWriter w(line, -1);
    w.begin_object();
    w.kv("schema", service::kRequestSchema);
    w.kv("schema_version", service::kProtocolVersion);
    w.kv("id", "arena");
    w.kv("source", corpus::source_for(c));
    w.key("options").begin_object();
    w.kv("procs", c.procs);
    w.end_object();
    w.end_object();
  }
  line.pop_back();  // parse_request takes an unframed line

  support::Arena arena;
  std::uint64_t warm_blocks = 0;
  for (int i = 0; i < 1000; ++i) {
    arena.reset();
    service::ParsedRequest parsed =
        service::parse_request(line, service::kMaxRequestBytes, &arena);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(parsed.request.id, "arena");
    EXPECT_EQ(parsed.request.options.procs, 4);
    if (i == 9) warm_blocks = arena.stats().block_allocs;
  }
  const support::ArenaStats& s = arena.stats();
  EXPECT_EQ(s.resets, 1000u);
  // Steady state: the blocks acquired in the first few requests serve all
  // later ones. Any growth after warm-up means the reset is not reusing.
  EXPECT_EQ(s.block_allocs, warm_blocks);
  EXPECT_GT(s.high_water, 0u);
  EXPECT_GE(s.bytes_reserved, s.high_water);
}

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

TEST(LatencyHistogram, PercentilesApproximateExactWithinBucketError) {
  support::LatencyHistogram h;
  std::vector<double> exact;
  for (int i = 1; i <= 1000; ++i) {
    const double ms = 0.05 * static_cast<double>(i);  // 0.05 .. 50 ms
    h.add(ms);
    exact.push_back(ms);
  }
  EXPECT_EQ(h.total(), 1000u);
  EXPECT_DOUBLE_EQ(h.max_ms(), 50.0);
  for (const double p : {50.0, 95.0, 99.0}) {
    const double approx = h.percentile(p);
    const double truth = exact[static_cast<std::size_t>(p / 100.0 * 999.0)];
    EXPECT_NEAR(approx / truth, 1.0, 0.10) << "p" << p;
  }
  // The top-ranked read reports the exact maximum, not a bucket midpoint.
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 50.0);
}

TEST(LatencyHistogram, MergeEqualsSerializationRoundTrip) {
  support::LatencyHistogram a, b;
  for (int i = 0; i < 500; ++i) a.add(0.01 * i);
  for (int i = 0; i < 300; ++i) b.add(1.0 + 0.1 * i);

  support::LatencyHistogram merged = a;
  merged.merge(b);

  // The pipe protocol: walk b's buckets out, inject into a copy of a.
  support::LatencyHistogram rebuilt = a;
  b.for_each_bucket(
      [&](int bucket, std::uint64_t count) { rebuilt.inject(bucket, count); });
  rebuilt.inject_extremes(b.sum_ms(), b.max_ms());

  EXPECT_EQ(rebuilt.total(), merged.total());
  EXPECT_DOUBLE_EQ(rebuilt.sum_ms(), merged.sum_ms());
  EXPECT_DOUBLE_EQ(rebuilt.max_ms(), merged.max_ms());
  for (const double p : {50.0, 90.0, 99.0})
    EXPECT_DOUBLE_EQ(rebuilt.percentile(p), merged.percentile(p));
}

// ---------------------------------------------------------------------------
// ShmRunCache
// ---------------------------------------------------------------------------

perf::RunKey key_of(std::uint64_t n) {
  perf::RunDigest d;
  d.mix(n);
  return d.key();
}

perf::CachedRun run_of(const std::string& report) {
  perf::CachedRun run;
  run.report_json = report;
  run.program = "prog";
  run.engine = "dp";
  run.compute_ms = 1.5;
  return run;
}

TEST(ShmRunCache, InsertFindRoundTrip) {
  const auto cache = perf::ShmRunCache::create({});
  ASSERT_NE(cache, nullptr);

  perf::CachedRun out;
  EXPECT_FALSE(cache->find(key_of(1), out));
  EXPECT_TRUE(cache->insert(key_of(1), run_of("{\"x\":1}")));
  ASSERT_TRUE(cache->find(key_of(1), out));
  EXPECT_EQ(out.report_json, "{\"x\":1}");
  EXPECT_EQ(out.program, "prog");
  EXPECT_EQ(out.engine, "dp");
  EXPECT_DOUBLE_EQ(out.compute_ms, 1.5);

  const perf::ShmCacheStats s = cache->stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.fills, 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(ShmRunCache, RejectsPayloadsLargerThanACell) {
  perf::ShmCacheConfig cfg;
  cfg.cell_bytes = 256;
  const auto cache = perf::ShmRunCache::create(cfg);
  ASSERT_NE(cache, nullptr);
  EXPECT_FALSE(cache->insert(key_of(1), run_of(std::string(4096, 'x'))));
  EXPECT_EQ(cache->stats().rejected_large, 1u);
  EXPECT_EQ(cache->stats().entries, 0u);
  // A fitting payload still lands.
  EXPECT_TRUE(cache->insert(key_of(1), run_of("ok")));
}

TEST(ShmRunCache, EvictsLeastRecentlyTouchedWithinBucket) {
  perf::ShmCacheConfig cfg;
  cfg.slots = perf::ShmRunCache::kWays;  // one bucket: every key collides
  cfg.cell_bytes = 512;
  const auto cache = perf::ShmRunCache::create(cfg);
  ASSERT_NE(cache, nullptr);

  for (std::uint64_t i = 0; i < 24; ++i)
    ASSERT_TRUE(cache->insert(key_of(i), run_of(std::to_string(i))));

  const perf::ShmCacheStats s = cache->stats();
  EXPECT_EQ(s.entries, static_cast<std::uint64_t>(perf::ShmRunCache::kWays));
  EXPECT_EQ(s.replacements, 24u - perf::ShmRunCache::kWays);
  // The most recent insert always survives.
  perf::CachedRun out;
  EXPECT_TRUE(cache->find(key_of(23), out));
  EXPECT_EQ(out.report_json, "23");
  // Re-inserting an existing key replaces in place, not a second slot.
  EXPECT_TRUE(cache->insert(key_of(23), run_of("v2")));
  EXPECT_EQ(cache->stats().entries,
            static_cast<std::uint64_t>(perf::ShmRunCache::kWays));
  ASSERT_TRUE(cache->find(key_of(23), out));
  EXPECT_EQ(out.report_json, "v2");
}

// ---------------------------------------------------------------------------
// RunCache as L1 over the segment
// ---------------------------------------------------------------------------

TEST(RunCacheL2, WriteThroughAndPromotion) {
  const auto segment = perf::ShmRunCache::create({});
  ASSERT_NE(segment, nullptr);
  // Two L1s over one segment: the in-process analogue of two shards.
  perf::RunCache a, b;
  a.attach_shared(segment.get());
  b.attach_shared(segment.get());

  const perf::RunKey k = key_of(42);
  a.insert(k, run_of("{\"r\":42}"));

  // b has never seen the key: its L1 misses, the segment serves it, and the
  // hit is promoted -- so the SECOND probe stays in-process.
  auto hit = b.find(k);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->report_json, "{\"r\":42}");
  perf::RunCacheStats sb = b.stats();
  EXPECT_EQ(sb.hits, 1u);
  EXPECT_EQ(sb.shared_hits, 1u);
  EXPECT_EQ(sb.shared_misses, 0u);

  const std::uint64_t segment_hits = segment->stats().hits;
  hit = b.find(k);
  ASSERT_NE(hit, nullptr);
  sb = b.stats();
  EXPECT_EQ(sb.hits, 2u);
  EXPECT_EQ(sb.shared_hits, 1u);              // still just the one promotion
  EXPECT_EQ(segment->stats().hits, segment_hits);  // L1 served it

  // A genuinely absent key misses both layers.
  EXPECT_EQ(b.find(key_of(7)), nullptr);
  EXPECT_EQ(b.stats().shared_misses, 1u);
}

TEST(RunCacheL2, OversizeWriteThroughFallsBackToL1Only) {
  perf::ShmCacheConfig cfg;
  cfg.cell_bytes = 256;
  const auto segment = perf::ShmRunCache::create(cfg);
  ASSERT_NE(segment, nullptr);
  perf::RunCache a, b;
  a.attach_shared(segment.get());
  b.attach_shared(segment.get());

  const perf::RunKey k = key_of(1);
  a.insert(k, run_of(std::string(4096, 'y')));
  EXPECT_EQ(a.stats().shared_rejects, 1u);
  // a still serves it from its L1 ...
  EXPECT_NE(a.find(k), nullptr);
  // ... but b cannot get it through the segment.
  EXPECT_EQ(b.find(k), nullptr);
}

TEST(RunCacheL2, ConcurrentTrafficAcrossTwoL1s) {
  const auto segment = perf::ShmRunCache::create({});
  ASSERT_NE(segment, nullptr);
  perf::RunCache a, b;
  a.attach_shared(segment.get());
  b.attach_shared(segment.get());

  constexpr int kThreadsPerCache = 3;
  constexpr int kOpsPerThread = 2000;
  constexpr std::uint64_t kKeySpace = 32;
  std::atomic<std::uint64_t> served{0};

  auto worker = [&](perf::RunCache& cache, unsigned seed) {
    std::uint64_t state = seed * 0x9e3779b97f4a7c15ULL + 1;
    for (int i = 0; i < kOpsPerThread; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      const std::uint64_t n = (state >> 33) % kKeySpace;
      const perf::RunKey k = key_of(n);
      const auto hit = cache.find(k);
      if (hit == nullptr) {
        cache.insert(k, run_of(std::to_string(n)));
      } else {
        ASSERT_EQ(hit->report_json, std::to_string(n));
        served.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreadsPerCache; ++t) {
      threads.emplace_back([&, t] { worker(a, static_cast<unsigned>(t + 1)); });
      threads.emplace_back(
          [&, t] { worker(b, static_cast<unsigned>(t + 100)); });
    }
  }

  // Every payload round-tripped intact (the ASSERT above), and the segment
  // carried real cross-cache traffic.
  EXPECT_GT(served.load(), 0u);
  const perf::ShmCacheStats s = segment->stats();
  EXPECT_GT(s.fills, 0u);
  EXPECT_LE(s.entries, kKeySpace);
  const perf::RunCacheStats sa = a.stats();
  const perf::RunCacheStats sb = b.stats();
  EXPECT_EQ(sa.hits + sa.misses,
            static_cast<std::uint64_t>(kThreadsPerCache) * kOpsPerThread);
  EXPECT_EQ(sb.hits + sb.misses,
            static_cast<std::uint64_t>(kThreadsPerCache) * kOpsPerThread);
}

} // namespace
} // namespace al
