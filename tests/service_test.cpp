// Service-layer tests (DESIGN.md section 11): the admission queue's
// backpressure contract, batch mode's central acceptance property (layout
// selections identical to the standalone tool at any worker count),
// structured rejections under saturation and admission deadlines, graceful
// shutdown, and a multi-client concurrent round-trip over a real loopback
// socket. The whole file runs under -DAL_SANITIZE=thread via the "tsan"
// ctest label.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "corpus/corpus.hpp"
#include "driver/json_report.hpp"
#include "driver/tool.hpp"
#include "service/protocol.hpp"
#include "service/queue.hpp"
#include "service/server.hpp"
#include "support/json.hpp"
#include "support/json_parse.hpp"
#include "support/thread_pool.hpp"

namespace al::service {
namespace {

using support::JsonValue;

// ---------------------------------------------------------------------------
// RequestQueue
// ---------------------------------------------------------------------------

Job make_job(const std::string& id) {
  Job job;
  job.request.id = id;
  job.respond = [](const std::string&) {};
  return job;
}

TEST(RequestQueue, TryPushFailsFastWhenFull) {
  RequestQueue q(2);
  EXPECT_EQ(q.try_push(make_job("a")), RequestQueue::Push::Ok);
  EXPECT_EQ(q.try_push(make_job("b")), RequestQueue::Push::Ok);
  EXPECT_EQ(q.try_push(make_job("c")), RequestQueue::Push::Full);
  EXPECT_EQ(q.size(), 2u);

  Job out;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out.request.id, "a");  // FIFO
  EXPECT_EQ(q.try_push(make_job("c")), RequestQueue::Push::Ok);
}

TEST(RequestQueue, CloseDrainsThenReleasesConsumers) {
  RequestQueue q(4);
  EXPECT_EQ(q.try_push(make_job("a")), RequestQueue::Push::Ok);
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.try_push(make_job("b")), RequestQueue::Push::Closed);
  EXPECT_EQ(q.push(make_job("b")), RequestQueue::Push::Closed);

  Job out;
  EXPECT_TRUE(q.pop(out));   // backlog still drains
  EXPECT_EQ(out.request.id, "a");
  EXPECT_FALSE(q.pop(out));  // then consumers are released
}

TEST(RequestQueue, BlockingPushWaitsForSpace) {
  RequestQueue q(1);
  EXPECT_EQ(q.push(make_job("a")), RequestQueue::Push::Ok);

  std::atomic<bool> pushed{false};
  std::jthread producer([&] {
    EXPECT_EQ(q.push(make_job("b")), RequestQueue::Push::Ok);
    pushed.store(true);
  });
  // The producer must be blocked while the queue is full...
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(pushed.load());
  // ...and admitted as soon as a consumer makes room.
  Job out;
  ASSERT_TRUE(q.pop(out));
  producer.join();
  EXPECT_TRUE(pushed.load());
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out.request.id, "b");
}

TEST(RequestQueue, FlushHandsBackEveryQueuedJob) {
  RequestQueue q(8);
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(q.try_push(make_job(std::to_string(i))), RequestQueue::Push::Ok);
  std::vector<std::string> dropped;
  q.flush([&](Job& job) { dropped.push_back(job.request.id); });
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(dropped, (std::vector<std::string>{"0", "1", "2", "3", "4"}));
}

// ---------------------------------------------------------------------------
// Shared request plumbing
// ---------------------------------------------------------------------------

std::vector<corpus::TestCase> service_corpus() {
  return {{"adi", 32, corpus::Dtype::DoublePrecision, 4},
          {"erlebacher", 16, corpus::Dtype::DoublePrecision, 4},
          {"tomcatv", 32, corpus::Dtype::DoublePrecision, 4},
          {"shallow", 32, corpus::Dtype::Real, 4}};
}

/// One NDJSON request line for a corpus case. `extra` is raw JSON spliced
/// into the top-level object (e.g. "\"delay_ms\":200").
std::string request_line(const corpus::TestCase& c, const std::string& id,
                         const std::string& extra = "") {
  std::ostringstream os;
  support::JsonWriter w(os, /*indent_width=*/-1);
  w.begin_object();
  w.kv("schema", kRequestSchema);
  w.kv("schema_version", kProtocolVersion);
  w.kv("id", id);
  w.kv("source", corpus::source_for(c));
  w.key("options").begin_object();
  w.kv("procs", c.procs);
  w.end_object();
  w.end_object();
  std::string line = os.str();  // ends "}\n"
  if (!extra.empty()) line.insert(line.size() - 2, "," + extra);
  return line;
}

JsonValue parse_response(const std::string& line) {
  JsonValue doc;
  std::string error;
  EXPECT_TRUE(JsonValue::parse(line, doc, error)) << error << "\n" << line;
  return doc;
}

// ---------------------------------------------------------------------------
// Batch mode
// ---------------------------------------------------------------------------

std::vector<JsonValue> run_batch_lines(const std::string& input, int workers,
                                       std::size_t queue = 64) {
  ServerOptions opts;
  opts.workers = workers;
  opts.queue_capacity = queue;
  Server server(opts);
  std::istringstream in(input);
  std::ostringstream out;
  EXPECT_EQ(server.run_batch(in, out), 0);

  std::vector<JsonValue> docs;
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) docs.push_back(parse_response(line));
  return docs;
}

/// The layout decision of a report: per-phase chosen candidate indices and
/// layouts plus the selection's total cost. This is the "identical layout
/// selections" acceptance from the issue -- timings and counters may differ
/// run to run; these values may not.
std::string selection_fingerprint(const JsonValue& report) {
  std::string fp;
  for (const JsonValue& phase : report.find("phases")->items()) {
    fp += phase.find("chosen")->number_lexeme();
    fp += ':';
    fp += phase.find("chosen_layout")->as_string();
    fp += '\n';
  }
  const JsonValue* sel = report.find("selection");
  fp += "total=";
  fp += sel->find("total_cost_us")->number_lexeme();
  fp += " dynamic=";
  fp += sel->find("dynamic")->as_bool() ? "1" : "0";
  return fp;
}

TEST(ServiceBatch, MatchesStandaloneToolAtAnyWorkerCount) {
  const std::vector<corpus::TestCase> cases = service_corpus();

  // Reference: the standalone pipeline, exactly as `autolayout --json`.
  std::vector<std::string> expected;
  for (const corpus::TestCase& c : cases) {
    driver::ToolOptions opts;
    opts.procs = c.procs;
    opts.threads = 1;
    const auto result = driver::run_tool(corpus::source_for(c), opts);
    JsonValue report;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(driver::json_report(*result), report, error))
        << error;
    expected.push_back(selection_fingerprint(report));
  }

  std::string input;
  for (const corpus::TestCase& c : cases) input += request_line(c, c.program);

  for (const int workers : {1, 8}) {
    const std::vector<JsonValue> docs = run_batch_lines(input, workers);
    ASSERT_EQ(docs.size(), cases.size()) << "workers=" << workers;
    for (std::size_t i = 0; i < cases.size(); ++i) {
      // Batch mode answers in input order regardless of completion order.
      EXPECT_EQ(docs[i].find("id")->as_string(), cases[i].program);
      ASSERT_EQ(docs[i].find("status")->as_string(), "ok");
      EXPECT_EQ(selection_fingerprint(*docs[i].find("report")), expected[i])
          << cases[i].program << " workers=" << workers;
    }
  }
}

TEST(ServiceBatch, AnswersBadLinesInPlace) {
  const corpus::TestCase c{"adi", 32, corpus::Dtype::DoublePrecision, 4};
  std::string input;
  input += request_line(c, "good1");
  input += "{\"schema\": broken\n";
  input += "{\"schema\":\"autolayout.request\",\"schema_version\":1}\n";
  input += request_line(c, "good2");

  const std::vector<JsonValue> docs = run_batch_lines(input, 2);
  ASSERT_EQ(docs.size(), 4u);
  EXPECT_EQ(docs[0].find("status")->as_string(), "ok");
  EXPECT_EQ(docs[1].find("status")->as_string(), "error");
  EXPECT_EQ(docs[1].find("error")->find("kind")->as_string(), "bad_request");
  EXPECT_EQ(docs[2].find("status")->as_string(), "error");
  EXPECT_NE(docs[2]
                .find("error")
                ->find("message")
                ->as_string()
                .find("needs \"source\""),
            std::string::npos);
  EXPECT_EQ(docs[3].find("status")->as_string(), "ok");
  EXPECT_EQ(docs[3].find("id")->as_string(), "good2");
}

// Regression: the worker default used to be a hard-coded 4, oversubscribing
// the 1-core container the benchmarks run on. 0 (the default) now means
// "auto" = ThreadPool::default_threads(); explicit counts stay verbatim.
TEST(ServiceBatch, WorkerCountDefaultsToUsableCpus) {
  {
    ServerOptions opts;  // workers = 0 = auto
    Server server(opts);
    EXPECT_EQ(server.workers(), support::ThreadPool::default_threads());
  }
  {
    ServerOptions opts;
    opts.workers = 7;  // explicit oversubscription is a valid choice
    Server server(opts);
    EXPECT_EQ(server.workers(), 7);
  }
}

TEST(ServiceBatch, SummaryCountsOutcomes) {
  const corpus::TestCase c{"adi", 32, corpus::Dtype::DoublePrecision, 2};
  ServerOptions opts;
  opts.workers = 2;
  Server server(opts);
  std::istringstream in(request_line(c, "a") + "not json\n" +
                        request_line(c, "b"));
  std::ostringstream out;
  ASSERT_EQ(server.run_batch(in, out), 0);

  const ServiceSummary s = server.summary();
  EXPECT_EQ(s.received, 3u);
  EXPECT_EQ(s.ok, 2u);
  EXPECT_EQ(s.errors, 1u);
  EXPECT_EQ(s.rejected, 0u);
  EXPECT_GT(s.p50_ms, 0.0);
  EXPECT_GE(s.max_ms, s.p99_ms);

  // The summary document parses and carries the schema envelope.
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(JsonValue::parse(s.json(), doc, error)) << error;
  EXPECT_EQ(doc.find("schema")->as_string(), "autolayout.service_summary");
  EXPECT_EQ(doc.find("requests")->find("ok")->number_lexeme(), "2");
}

// ---------------------------------------------------------------------------
// Daemon mode over a real loopback socket
// ---------------------------------------------------------------------------

/// A minimal blocking NDJSON client for one loopback connection.
class TestClient {
public:
  explicit TestClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send_line(const std::string& line) {
    std::size_t off = 0;
    while (off < line.size()) {
      const ssize_t n = ::send(fd_, line.data() + off, line.size() - off, 0);
      ASSERT_GT(n, 0);
      off += static_cast<std::size_t>(n);
    }
  }

  /// Blocks until one full response line arrived (empty on EOF).
  std::string recv_line() {
    while (true) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return std::string();
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

private:
  int fd_ = -1;
  std::string buffer_;
};

TEST(ServiceDaemon, ConcurrentClientsRoundTrip) {
  ServerOptions opts;
  opts.workers = 4;
  Server server(opts);
  ASSERT_TRUE(server.start());
  ASSERT_GT(server.port(), 0);

  const corpus::TestCase c{"adi", 32, corpus::Dtype::DoublePrecision, 2};
  constexpr int kClients = 4;
  constexpr int kPerClient = 3;
  std::atomic<int> ok_count{0};
  {
    std::vector<std::jthread> clients;
    clients.reserve(kClients);
    for (int ci = 0; ci < kClients; ++ci) {
      clients.emplace_back([&, ci] {
        TestClient client(server.port());
        for (int r = 0; r < kPerClient; ++r) {
          std::string id = "c";
          id += std::to_string(ci);
          id += '-';
          id += std::to_string(r);
          client.send_line(request_line(c, id));
          const std::string line = client.recv_line();
          ASSERT_FALSE(line.empty());
          const JsonValue doc = parse_response(line);
          EXPECT_EQ(doc.find("id")->as_string(), id);
          if (doc.find("status")->as_string() == "ok") ok_count.fetch_add(1);
        }
      });
    }
  }
  EXPECT_EQ(ok_count.load(), kClients * kPerClient);

  server.request_stop();
  server.wait();
  const ServiceSummary s = server.summary();
  EXPECT_EQ(s.ok, static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_EQ(s.rejected, 0u);
}

TEST(ServiceDaemon, SaturatedQueueRejectsStructurally) {
  ServerOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 1;
  Server server(opts);
  ASSERT_TRUE(server.start());

  const corpus::TestCase c{"adi", 32, corpus::Dtype::DoublePrecision, 2};
  TestClient client(server.port());
  // The first request parks the only worker in its think-time; the second
  // fills the one-slot queue; the burst after that must bounce immediately.
  client.send_line(request_line(c, "busy", "\"delay_ms\":400"));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  client.send_line(request_line(c, "queued"));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  constexpr int kBurst = 3;
  for (int i = 0; i < kBurst; ++i)
    client.send_line(request_line(c, "burst" + std::to_string(i)));

  int ok = 0, rejected = 0;
  for (int i = 0; i < 2 + kBurst; ++i) {
    const std::string line = client.recv_line();
    ASSERT_FALSE(line.empty());
    const JsonValue doc = parse_response(line);
    const std::string status{doc.find("status")->as_string()};
    if (status == "ok") {
      ++ok;
    } else {
      ASSERT_EQ(status, "rejected");
      EXPECT_EQ(doc.find("reason")->as_string(), "queue full");
      ++rejected;
    }
  }
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(rejected, kBurst);

  server.request_stop();
  server.wait();
  EXPECT_EQ(server.summary().rejected, static_cast<std::uint64_t>(kBurst));
}

TEST(ServiceDaemon, ReorderBufferOverflowParksStructuredRejection) {
  ServerOptions opts;
  opts.workers = 2;
  opts.reorder_cap = 1;  // one parked response, then overflow
  Server server(opts);
  ASSERT_TRUE(server.start());

  const corpus::TestCase c{"adi", 32, corpus::Dtype::DoublePrecision, 2};
  TestClient client(server.port());
  // Three pipelined requests, all admitted before any completes (the
  // reader's backpressure probe sees an empty buffer while it parses).
  // s0 parks one worker for 300ms; the other worker finishes s1 at ~50ms
  // (parked: buffer now at cap) and s2 at ~150ms -- that completion finds
  // the buffer full, so its payload is replaced by a structured rejection.
  // When s0 finally completes, all three flush in order.
  client.send_line(request_line(c, "s0", "\"delay_ms\":300"));
  client.send_line(request_line(c, "s1", "\"delay_ms\":50"));
  client.send_line(request_line(c, "s2", "\"delay_ms\":100"));

  const std::vector<std::string> expect_ids = {"s0", "s1", "s2"};
  for (int i = 0; i < 3; ++i) {
    const std::string line = client.recv_line();
    ASSERT_FALSE(line.empty()) << "response " << i;
    const JsonValue doc = parse_response(line);
    EXPECT_EQ(doc.find("id")->as_string(), expect_ids[static_cast<std::size_t>(i)]);
    if (i < 2) {
      EXPECT_EQ(doc.find("status")->as_string(), "ok") << line;
    } else {
      EXPECT_EQ(doc.find("status")->as_string(), "rejected") << line;
      EXPECT_EQ(doc.find("reason")->as_string(),
                "response reorder buffer overflow");
    }
  }

  server.request_stop();
  server.wait();
  EXPECT_EQ(server.summary().reorder_overflows, 1u);
}

TEST(ServiceDaemon, AdmissionDeadlineRejectsLateWork) {
  ServerOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 8;
  Server server(opts);
  ASSERT_TRUE(server.start());

  const corpus::TestCase c{"adi", 32, corpus::Dtype::DoublePrecision, 2};
  TestClient client(server.port());
  // The worker is busy for 300ms; the second request only tolerates 1ms of
  // queueing, so by the time it is popped its admission deadline has passed.
  client.send_line(request_line(c, "busy", "\"delay_ms\":300"));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  client.send_line(request_line(c, "impatient", "\"queue_deadline_ms\":1"));

  int ok = 0, deadline_rejects = 0;
  for (int i = 0; i < 2; ++i) {
    const JsonValue doc = parse_response(client.recv_line());
    if (doc.find("status")->as_string() == "ok") {
      ++ok;
    } else {
      EXPECT_EQ(doc.find("status")->as_string(), "rejected");
      EXPECT_EQ(doc.find("id")->as_string(), "impatient");
      EXPECT_EQ(doc.find("reason")->as_string(), "admission deadline exceeded");
      ++deadline_rejects;
    }
  }
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(deadline_rejects, 1);

  server.request_stop();
  server.wait();
}

TEST(ServiceDaemon, ShutdownWithoutGraceRejectsQueuedWork) {
  ServerOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 8;
  opts.grace_ms = 0;  // no drain budget: queued-but-unstarted work is rejected
  Server server(opts);
  ASSERT_TRUE(server.start());

  const corpus::TestCase c{"adi", 32, corpus::Dtype::DoublePrecision, 2};
  TestClient client(server.port());
  // The only worker sits in its think-time long enough for the whole
  // shutdown sequence (listener + readers wind down, zero-grace drain,
  // reject_all) to complete before it frees up.
  client.send_line(request_line(c, "busy", "\"delay_ms\":800"));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  client.send_line(request_line(c, "stranded1"));
  client.send_line(request_line(c, "stranded2"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  server.request_stop();
  // wait() performs the drain-and-reject phases, so it must run while this
  // thread reads the responses.
  std::jthread waiter([&] { server.wait(); });

  // The in-flight request still completes; the stranded ones are answered
  // with structured shutdown rejections before the connection closes.
  int ok = 0, shutdown_rejects = 0;
  for (int i = 0; i < 3; ++i) {
    const std::string line = client.recv_line();
    ASSERT_FALSE(line.empty()) << "connection closed before all responses";
    const JsonValue doc = parse_response(line);
    if (doc.find("status")->as_string() == "ok") {
      ++ok;
    } else {
      EXPECT_EQ(doc.find("status")->as_string(), "rejected");
      EXPECT_EQ(doc.find("reason")->as_string(), "shutting down");
      ++shutdown_rejects;
    }
  }
  waiter.join();
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(shutdown_rejects, 2);
  EXPECT_EQ(server.summary().rejected, 2u);
}

// ---------------------------------------------------------------------------
// Pipelining: many in-flight requests per connection, responses in REQUEST
// order (the client matches responses positionally).
// ---------------------------------------------------------------------------

TEST(ServiceDaemon, PipelinedResponsesArriveInRequestOrder) {
  ServerOptions opts;
  opts.workers = 4;  // completion order WILL scramble; delivery order may not
  Server server(opts);
  ASSERT_TRUE(server.start());

  const corpus::TestCase c{"adi", 32, corpus::Dtype::DoublePrecision, 2};
  TestClient client(server.port());
  // The first request parks in think-time so every later request COMPLETES
  // before it; a malformed line in the middle checks that parse errors are
  // sequenced like any other response.
  client.send_line(request_line(c, "p0", "\"delay_ms\":250"));
  client.send_line(request_line(c, "p1"));
  client.send_line("this is not json\n");
  client.send_line(request_line(c, "p2"));
  client.send_line(request_line(c, "p3"));

  const std::vector<std::pair<std::string, std::string>> expected = {
      {"p0", "ok"}, {"p1", "ok"}, {"", "error"}, {"p2", "ok"}, {"p3", "ok"}};
  for (const auto& [id, status] : expected) {
    const std::string line = client.recv_line();
    ASSERT_FALSE(line.empty()) << "expected response for '" << id << "'";
    const JsonValue doc = parse_response(line);
    EXPECT_EQ(doc.find("id")->as_string(), id);
    EXPECT_EQ(doc.find("status")->as_string(), status) << line;
  }

  server.request_stop();
  server.wait();
}

TEST(ServiceDaemon, PipelinedShutdownKeepsRequestOrder) {
  ServerOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 8;
  opts.grace_ms = 0;
  Server server(opts);
  ASSERT_TRUE(server.start());

  const corpus::TestCase c{"adi", 32, corpus::Dtype::DoublePrecision, 2};
  TestClient client(server.port());
  client.send_line(request_line(c, "busy", "\"delay_ms\":600"));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  client.send_line(request_line(c, "stranded1"));
  client.send_line(request_line(c, "stranded2"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  server.request_stop();
  std::jthread waiter([&] { server.wait(); });

  // The shutdown rejections are produced almost immediately, but the
  // ordering contract holds them behind the in-flight request's response.
  const std::vector<std::pair<std::string, std::string>> expected = {
      {"busy", "ok"}, {"stranded1", "rejected"}, {"stranded2", "rejected"}};
  for (const auto& [id, status] : expected) {
    const std::string line = client.recv_line();
    ASSERT_FALSE(line.empty()) << "connection closed before '" << id << "'";
    const JsonValue doc = parse_response(line);
    EXPECT_EQ(doc.find("id")->as_string(), id);
    EXPECT_EQ(doc.find("status")->as_string(), status) << line;
    if (status == "rejected")
      EXPECT_EQ(doc.find("reason")->as_string(), "shutting down");
  }
  waiter.join();
}

// The cache fast path answers BEFORE queue admission: with the only worker
// parked and the one-slot queue full, a repeat of an already-cached request
// is served as a hit where any uncached request would bounce "queue full".
TEST(ServiceDaemon, CacheHitsBypassASaturatedQueue) {
  ServerOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 1;
  Server server(opts);
  ASSERT_TRUE(server.start());

  const corpus::TestCase warm{"adi", 32, corpus::Dtype::DoublePrecision, 2};
  const corpus::TestCase other{"adi", 32, corpus::Dtype::DoublePrecision, 4};
  TestClient filler(server.port());
  TestClient prober(server.port());

  // Warm the cache while the worker is free.
  prober.send_line(request_line(warm, "warm"));
  {
    const JsonValue doc = parse_response(prober.recv_line());
    EXPECT_EQ(doc.find("status")->as_string(), "ok");
    EXPECT_EQ(doc.find("cache")->as_string(), "miss");
  }

  // Park the worker (delay requests are fast-path-ineligible) and fill the
  // queue with a DIFFERENT key so the probe cannot be served by a worker.
  filler.send_line(request_line(warm, "busy", "\"delay_ms\":500"));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  filler.send_line(request_line(other, "queued"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  prober.send_line(request_line(warm, "repeat"));
  {
    const JsonValue doc = parse_response(prober.recv_line());
    EXPECT_EQ(doc.find("id")->as_string(), "repeat");
    EXPECT_EQ(doc.find("status")->as_string(), "ok") << "fast path must not queue";
    EXPECT_EQ(doc.find("cache")->as_string(), "hit");
  }
  for (int i = 0; i < 2; ++i) {
    const JsonValue doc = parse_response(filler.recv_line());
    EXPECT_EQ(doc.find("status")->as_string(), "ok");
  }

  server.request_stop();
  server.wait();
  const ServiceSummary s = server.summary();
  // warm + queued computed; busy (worker-side consult) + repeat were hits.
  EXPECT_EQ(s.cache_hits, 2u);
  EXPECT_EQ(s.cache_misses, 2u);
}

} // namespace
} // namespace al::service
