// Observability-layer tests: span nesting/containment, recording under the
// worker pool (this file lives in the tsan-labelled binary so the same
// suites rerun under -DAL_SANITIZE=thread), disabled-mode zero allocation,
// and the metrics registry's concurrency guarantees.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>

#include "support/metrics.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

// Counting replacements for the global allocator: the disabled-span test
// asserts the hot path performs ZERO allocations. Replacing scalar
// new/delete is enough -- the default array forms forward here.
static std::atomic<long> g_alloc_count{0};

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace al::support {
namespace {

class TraceTest : public ::testing::Test {
protected:
  void SetUp() override {
    Tracer::instance().set_enabled(false);
    Tracer::instance().reset();
  }
  void TearDown() override {
    Tracer::instance().set_enabled(false);
    Tracer::instance().reset();
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothingAndAllocateNothing) {
  const long before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    TraceSpan span("disabled");
    (void)span;
  }
  const long after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(before, after);
  EXPECT_EQ(Tracer::instance().size(), 0u);
}

TEST_F(TraceTest, StopMsMeasuresEvenWhenDisabled) {
  TraceSpan span("timed");
  // Burn a little wall clock so the duration is strictly positive.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  const double ms = span.stop_ms();
  EXPECT_GT(ms, 0.0);
  EXPECT_EQ(span.stop_ms(), ms);  // idempotent
  EXPECT_EQ(Tracer::instance().size(), 0u);
}

TEST_F(TraceTest, NestedSpansCarryDepthAndContainment) {
  Tracer::instance().set_enabled(true);
  {
    TraceSpan outer("outer");
    {
      TraceSpan inner("inner");
      TraceSpan leaf("leaf");
    }
    TraceSpan sibling("sibling");
  }
  const std::vector<SpanRecord> spans = Tracer::instance().snapshot();
  ASSERT_EQ(spans.size(), 4u);  // recorded in close order
  EXPECT_STREQ(spans[0].name, "leaf");
  EXPECT_STREQ(spans[1].name, "inner");
  EXPECT_STREQ(spans[2].name, "sibling");
  EXPECT_STREQ(spans[3].name, "outer");
  EXPECT_EQ(spans[3].depth, 0);
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[2].depth, 1);
  EXPECT_EQ(spans[0].depth, 2);
  // The outer span contains every other span's interval.
  const SpanRecord& outer = spans[3];
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GE(spans[i].start_ns, outer.start_ns);
    EXPECT_LE(spans[i].start_ns + spans[i].dur_ns, outer.start_ns + outer.dur_ns);
  }
}

TEST_F(TraceTest, RecordsFromPoolWorkersWithoutLossOrRace) {
  Tracer::instance().set_enabled(true);
  constexpr std::size_t kN = 500;
  {
    ThreadPool pool(4);
    parallel_for(&pool, kN, [](std::size_t) { TraceSpan span("work"); });
  }
  Tracer::instance().set_enabled(false);
  std::size_t work_spans = 0;
  for (const SpanRecord& s : Tracer::instance().snapshot()) {
    if (std::string(s.name) == "work") ++work_spans;
  }
  EXPECT_EQ(work_spans, kN);
  EXPECT_EQ(Tracer::instance().dropped(), 0u);
}

TEST_F(TraceTest, ChromeTraceJsonShape) {
  Tracer::instance().set_enabled(true);
  { TraceSpan span("hello"); }
  Tracer::instance().set_enabled(false);
  const std::string doc = Tracer::instance().chrome_trace_json();
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\": \"hello\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\": \"X\""), std::string::npos);
}

TEST_F(TraceTest, ResetDropsSpans) {
  Tracer::instance().set_enabled(true);
  { TraceSpan span("gone"); }
  EXPECT_EQ(Tracer::instance().size(), 1u);
  Tracer::instance().reset();
  EXPECT_EQ(Tracer::instance().size(), 0u);
}

TEST(MetricsTest, ConcurrentAddsSumExactly) {
  Metrics::Counter& c = Metrics::instance().counter("test.concurrent_adds");
  const std::uint64_t base = c.value();
  constexpr std::size_t kN = 10000;
  {
    ThreadPool pool(4);
    parallel_for(&pool, kN, [&c](std::size_t) { c.add(); });
  }
  EXPECT_EQ(c.value(), base + kN);
}

TEST(MetricsTest, ResetZeroesInPlaceKeepingHandles) {
  Metrics::Counter& c = Metrics::instance().counter("test.reset_handle");
  c.add(7);
  EXPECT_GE(c.value(), 7u);
  Metrics::instance().reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(1);  // the old handle still works after reset
  EXPECT_EQ(c.value(), 1u);
  EXPECT_EQ(&c, &Metrics::instance().counter("test.reset_handle"));
}

TEST(MetricsTest, SnapshotIsNameSortedAndTyped) {
  Metrics::instance().reset();
  Metrics::instance().counter("test.b_counter").add(2);
  Metrics::instance().set_gauge("test.a_gauge", 1.5);
  const std::vector<Metrics::Sample> samples = Metrics::instance().snapshot();
  ASSERT_GE(samples.size(), 2u);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LT(samples[i - 1].name, samples[i].name);
  }
  bool saw_counter = false;
  bool saw_gauge = false;
  for (const auto& s : samples) {
    if (s.name == "test.b_counter") {
      saw_counter = true;
      EXPECT_FALSE(s.is_gauge);
      EXPECT_EQ(s.count, 2u);
    }
    if (s.name == "test.a_gauge") {
      saw_gauge = true;
      EXPECT_TRUE(s.is_gauge);
      EXPECT_DOUBLE_EQ(s.gauge, 1.5);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
}

} // namespace
} // namespace al::support
