// Randomized equivalence harness for the warm-started MIP engine (DESIGN.md
// section 12). The warm path stacks four optimizations on the baseline
// solver -- dual-simplex basis reuse, 0-1 presolve, pseudo-cost branching,
// and (at the selection layer) dominance pruning -- and every one of them
// claims to be EXACT. This file hammers that claim:
//   * 200+ seeded random 0-1 models: the full engine, the cold baseline,
//     and exhaustive enumeration must agree on status and optimal objective.
//   * The same models under a 1-node budget must still produce a FEASIBLE
//     incumbent whenever they claim one (the degradation ladder's floor).
//   * The four corpus programs must select IDENTICAL layouts with dominance
//     pruning on and off.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "corpus/corpus.hpp"
#include "driver/tool.hpp"
#include "ilp/branch_and_bound.hpp"

namespace al::ilp {
namespace {

/// A random bounded 0-1 model shaped like the pipeline's formulations:
/// mostly-unit rows, a sprinkle of exactly-one SOS rows, small integer
/// coefficients, occasional negative terms. Always bounded (binaries only).
Model random_model(std::mt19937& rng) {
  std::uniform_int_distribution<int> nvars_d(3, 10);
  std::uniform_int_distribution<int> nrows_d(2, 8);
  std::uniform_int_distribution<int> coef_d(-3, 3);
  std::uniform_int_distribution<int> obj_d(-5, 5);
  std::uniform_int_distribution<int> rhs_d(-2, 4);
  std::uniform_int_distribution<int> rel_d(0, 2);
  std::uniform_int_distribution<int> pick_d(0, 99);

  const int n = nvars_d(rng);
  Model m(pick_d(rng) < 50 ? Sense::Minimize : Sense::Maximize);
  for (int j = 0; j < n; ++j)
    m.add_binary("x" + std::to_string(j), static_cast<double>(obj_d(rng)));

  const int rows = nrows_d(rng);
  for (int r = 0; r < rows; ++r) {
    std::vector<Term> terms;
    if (pick_d(rng) < 25) {
      // Exactly-one SOS row over a random prefix, like "one candidate per
      // phase" -- the shape presolve probing and the formulations live on.
      std::uniform_int_distribution<int> len_d(2, n);
      const int len = len_d(rng);
      for (int j = 0; j < len; ++j) terms.push_back({j, 1.0});
      m.add_constraint("sos" + std::to_string(r), std::move(terms), Rel::EQ, 1.0);
      continue;
    }
    for (int j = 0; j < n; ++j) {
      if (pick_d(rng) < 40) {
        const int c = coef_d(rng);
        if (c != 0) terms.push_back({j, static_cast<double>(c)});
      }
    }
    if (terms.empty()) terms.push_back({0, 1.0});
    const int rk = rel_d(rng);
    const Rel rel = rk == 0 ? Rel::LE : rk == 1 ? Rel::GE : Rel::EQ;
    m.add_constraint("r" + std::to_string(r), std::move(terms), rel,
                     static_cast<double>(rhs_d(rng)));
  }
  return m;
}

constexpr int kSeeds = 200;

TEST(WarmFuzz, FullEngineMatchesColdBaselineAndOracle) {
  int optimal = 0;
  int infeasible = 0;
  long warm_started = 0;
  for (int seed = 0; seed < kSeeds; ++seed) {
    std::mt19937 rng(static_cast<unsigned>(seed));
    const Model m = random_model(rng);

    MipOptions cold;
    cold.warm_start = false;
    cold.presolve = false;
    cold.branching = Branching::MostFractional;
    const MipResult rc = solve_mip(m, cold);

    const MipResult rw = solve_mip(m);  // warm + presolve + pseudo-cost
    const MipResult oracle = solve_by_enumeration(m);

    ASSERT_EQ(rw.status, oracle.status) << "seed " << seed << "\n" << m.str();
    ASSERT_EQ(rc.status, oracle.status) << "seed " << seed << "\n" << m.str();
    if (oracle.status == SolveStatus::Optimal) {
      ++optimal;
      ASSERT_NEAR(rw.objective, oracle.objective, 1e-6)
          << "seed " << seed << "\n" << m.str();
      ASSERT_NEAR(rc.objective, oracle.objective, 1e-6)
          << "seed " << seed << "\n" << m.str();
      ASSERT_TRUE(m.is_feasible(rw.x)) << "seed " << seed << "\n" << m.str();
      for (std::size_t j = 0; j < rw.x.size(); ++j) {
        ASSERT_NEAR(rw.x[j], std::round(rw.x[j]), 1e-9)
            << "seed " << seed << " var " << j << " not integral";
      }
    } else {
      ++infeasible;
    }
    EXPECT_EQ(rc.warm_starts, 0) << "cold run must never warm start";
    warm_started += rw.warm_starts;
  }
  // The corpus must exercise both outcomes and the warm path for real.
  EXPECT_GT(optimal, 20);
  EXPECT_GT(infeasible, 20);
  EXPECT_GT(warm_started, 0) << "no model ever reused a basis";
}

TEST(WarmFuzz, OneNodeBudgetIncumbentsAreFeasible) {
  // --mip-nodes 1: the engine may only claim Feasible/Optimal when it holds
  // a genuinely feasible incumbent (this is what the degradation ladder
  // hands to the selection fallbacks).
  int with_solution = 0;
  for (int seed = 0; seed < kSeeds; ++seed) {
    std::mt19937 rng(static_cast<unsigned>(seed));
    const Model m = random_model(rng);

    MipOptions opts;
    opts.max_nodes = 1;
    const MipResult r = solve_mip(m, opts);
    if (has_solution(r.status)) {
      ++with_solution;
      ASSERT_TRUE(m.is_feasible(r.x)) << "seed " << seed << "\n" << m.str();
      for (std::size_t j = 0; j < r.x.size(); ++j) {
        ASSERT_NEAR(r.x[j], std::round(r.x[j]), 1e-9)
            << "seed " << seed << " var " << j << " not integral";
      }
      // Never better than the true optimum.
      const MipResult oracle = solve_by_enumeration(m);
      ASSERT_EQ(oracle.status, SolveStatus::Optimal) << "seed " << seed;
      if (m.sense() == Sense::Minimize) {
        ASSERT_GE(r.objective, oracle.objective - 1e-6) << "seed " << seed;
      } else {
        ASSERT_LE(r.objective, oracle.objective + 1e-6) << "seed " << seed;
      }
    } else {
      ASSERT_TRUE(r.x.empty()) << "seed " << seed << ": x without a solution";
    }
  }
  EXPECT_GT(with_solution, 20);
}

// Dominance pruning must be invisible in the answers: identical chosen
// layouts, identical costs, checker green -- across the whole corpus.
TEST(WarmFuzz, DominancePruningPreservesCorpusSelections) {
  const std::vector<corpus::TestCase> cases = {
      {"adi", 32, corpus::Dtype::DoublePrecision, 4},
      {"erlebacher", 16, corpus::Dtype::DoublePrecision, 4},
      {"tomcatv", 32, corpus::Dtype::DoublePrecision, 4},
      {"shallow", 32, corpus::Dtype::Real, 4},
  };
  for (const corpus::TestCase& c : cases) {
    const std::string src = corpus::source_for(c);

    driver::ToolOptions on;
    on.procs = c.procs;
    on.threads = 1;
    on.dominance = true;
    const auto with = driver::run_tool(src, on);

    driver::ToolOptions off = on;
    off.dominance = false;
    const auto without = driver::run_tool(src, off);

    ASSERT_TRUE(with->verification.ok) << c.name() << ": " << with->verification.message;
    ASSERT_TRUE(without->verification.ok)
        << c.name() << ": " << without->verification.message;
    ASSERT_EQ(with->selection.chosen, without->selection.chosen) << c.name();
    EXPECT_NEAR(with->selection.total_cost_us, without->selection.total_cost_us,
                1e-6 * (1.0 + std::abs(without->selection.total_cost_us)))
        << c.name();
    EXPECT_EQ(without->selection.dominated_candidates, 0) << c.name();
  }
}

} // namespace
} // namespace al::ilp
