// Lexer unit tests: tokens, literals, comments, continuations, directives.
#include <gtest/gtest.h>

#include "fortran/lexer.hpp"

namespace al::fortran {
namespace {

std::vector<Token> lex_ok(std::string_view src) {
  DiagnosticEngine diags;
  auto toks = lex(src, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.str();
  return toks;
}

std::vector<Tok> kinds(const std::vector<Token>& toks) {
  std::vector<Tok> out;
  for (const auto& t : toks) out.push_back(t.kind);
  return out;
}

TEST(Lexer, EmptyInput) {
  auto toks = lex_ok("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, Tok::End);
}

TEST(Lexer, IdentifiersAreLowercased) {
  auto toks = lex_ok("Foo BAR_9");
  ASSERT_GE(toks.size(), 2u);
  EXPECT_EQ(toks[0].text, "foo");
  EXPECT_EQ(toks[1].text, "bar_9");
}

TEST(Lexer, IntegerLiteral) {
  auto toks = lex_ok("12345");
  EXPECT_EQ(toks[0].kind, Tok::IntLit);
  EXPECT_EQ(toks[0].int_value, 12345);
}

TEST(Lexer, IntegerLiteralOverflowReported) {
  // Pre-fix behavior: strtol saturated silently and the program "compiled"
  // with LONG_MAX. Overflow must be a lexer diagnostic.
  DiagnosticEngine diags;
  (void)lex("n = 99999999999999999999999999999\n", diags);
  EXPECT_TRUE(diags.has_errors());
  EXPECT_NE(diags.str().find("out of range"), std::string::npos) << diags.str();
}

TEST(Lexer, HugeRealExponentReported) {
  DiagnosticEngine diags;
  (void)lex("x = 1.0e99999\n", diags);
  EXPECT_TRUE(diags.has_errors());
  EXPECT_NE(diags.str().find("out of range"), std::string::npos) << diags.str();
}

TEST(Lexer, InRangeLiteralsStayExact) {
  auto toks = lex_ok("2147483647 1.0e300");
  ASSERT_GE(toks.size(), 2u);
  EXPECT_EQ(toks[0].int_value, 2147483647L);
  EXPECT_DOUBLE_EQ(toks[1].real_value, 1.0e300);
}

TEST(Lexer, RealLiterals) {
  auto toks = lex_ok("1.5 0.25 2. 1e3 1.5e-2 3d0 4.5D+1");
  ASSERT_GE(toks.size(), 7u);
  EXPECT_EQ(toks[0].kind, Tok::RealLit);
  EXPECT_DOUBLE_EQ(toks[0].real_value, 1.5);
  EXPECT_DOUBLE_EQ(toks[1].real_value, 0.25);
  EXPECT_DOUBLE_EQ(toks[2].real_value, 2.0);
  EXPECT_DOUBLE_EQ(toks[3].real_value, 1000.0);
  EXPECT_DOUBLE_EQ(toks[4].real_value, 0.015);
  EXPECT_DOUBLE_EQ(toks[5].real_value, 3.0);
  EXPECT_DOUBLE_EQ(toks[6].real_value, 45.0);
}

TEST(Lexer, IntFollowedByDotOperator) {
  // "1.lt.2" must lex as IntLit Lt IntLit, not a real literal.
  auto toks = lex_ok("1.lt.2");
  ASSERT_GE(toks.size(), 3u);
  EXPECT_EQ(toks[0].kind, Tok::IntLit);
  EXPECT_EQ(toks[1].kind, Tok::Lt);
  EXPECT_EQ(toks[2].kind, Tok::IntLit);
}

TEST(Lexer, DotOperators) {
  auto toks = lex_ok("a .lt. b .le. c .gt. d .ge. e .eq. f .ne. g .and. h .or. .not. i");
  std::vector<Tok> expect = {Tok::Ident, Tok::Lt, Tok::Ident, Tok::Le, Tok::Ident,
                             Tok::Gt,    Tok::Ident, Tok::Ge, Tok::Ident, Tok::EqEq,
                             Tok::Ident, Tok::Ne, Tok::Ident, Tok::And, Tok::Ident,
                             Tok::Or,    Tok::Not, Tok::Ident, Tok::Newline, Tok::End};
  EXPECT_EQ(kinds(toks), expect);
}

TEST(Lexer, SymbolicRelationalOperators) {
  auto toks = lex_ok("a < b <= c > d >= e == f");
  std::vector<Tok> expect = {Tok::Ident, Tok::Lt,    Tok::Ident, Tok::Le,
                             Tok::Ident, Tok::Gt,    Tok::Ident, Tok::Ge,
                             Tok::Ident, Tok::EqEq,  Tok::Ident, Tok::Newline, Tok::End};
  EXPECT_EQ(kinds(toks), expect);
}

TEST(Lexer, PowerVsStar) {
  auto toks = lex_ok("a ** b * c");
  EXPECT_EQ(toks[1].kind, Tok::Power);
  EXPECT_EQ(toks[3].kind, Tok::Star);
}

TEST(Lexer, FixedFormCommentLines) {
  auto toks = lex_ok("c a comment line\nC another\n* starred\n      x = 1\n");
  // Only the assignment should produce tokens.
  std::vector<Tok> expect = {Tok::Ident, Tok::Assign, Tok::IntLit, Tok::Newline, Tok::End};
  EXPECT_EQ(kinds(toks), expect);
}

TEST(Lexer, BangComment) {
  auto toks = lex_ok("x = 1 ! trailing comment\n");
  std::vector<Tok> expect = {Tok::Ident, Tok::Assign, Tok::IntLit, Tok::Newline, Tok::End};
  EXPECT_EQ(kinds(toks), expect);
}

TEST(Lexer, AmpersandContinuation) {
  auto toks = lex_ok("x = 1 + &\n    2\n");
  std::vector<Tok> expect = {Tok::Ident, Tok::Assign, Tok::IntLit, Tok::Plus,
                             Tok::IntLit, Tok::Newline, Tok::End};
  EXPECT_EQ(kinds(toks), expect);
}

TEST(Lexer, ProbDirective) {
  auto toks = lex_ok("!al$ prob(0.25)\nif (x .gt. 1) then\nendif\n");
  ASSERT_GE(toks.size(), 2u);
  EXPECT_EQ(toks[0].kind, Tok::ProbDirective);
  EXPECT_DOUBLE_EQ(toks[0].real_value, 0.25);
  EXPECT_EQ(toks[1].kind, Tok::Newline);
}

TEST(Lexer, UnknownDirectiveWarnsButContinues) {
  DiagnosticEngine diags;
  auto toks = lex("!al$ frobnicate(1)\nx = 1\n", diags);
  EXPECT_FALSE(diags.has_errors());
  EXPECT_EQ(diags.all().size(), 1u);  // one warning
  // The directive line is skipped entirely.
  EXPECT_EQ(toks[0].kind, Tok::Ident);
}

TEST(Lexer, MalformedProbDirectiveIsError) {
  DiagnosticEngine diags;
  (void)lex("!al$ prob(oops)\n", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Lexer, UnknownCharacterReported) {
  DiagnosticEngine diags;
  (void)lex("x = 1 @ 2\n", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Lexer, UnknownDotOperatorReported) {
  DiagnosticEngine diags;
  (void)lex("a .foo. b\n", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Lexer, TracksLineNumbers) {
  auto toks = lex_ok("x = 1\ny = 2\n");
  // Find the token for 'y'.
  for (const auto& t : toks) {
    if (t.kind == Tok::Ident && t.text == "y") {
      EXPECT_EQ(t.loc.line, 2u);
      return;
    }
  }
  FAIL() << "token 'y' not found";
}

TEST(Lexer, NoNewlineTokenForBlankLines) {
  auto toks = lex_ok("\n\n\nx = 1\n\n\n");
  std::vector<Tok> expect = {Tok::Ident, Tok::Assign, Tok::IntLit, Tok::Newline, Tok::End};
  EXPECT_EQ(kinds(toks), expect);
}

TEST(Lexer, ColonForBoundsRanges) {
  auto toks = lex_ok("real a(0:n)");
  bool saw_colon = false;
  for (const auto& t : toks) saw_colon = saw_colon || t.kind == Tok::Colon;
  EXPECT_TRUE(saw_colon);
}

} // namespace
} // namespace al::fortran
