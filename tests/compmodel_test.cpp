// Compiler model tests: reference classification under candidate layouts,
// message vectorization/coalescing, recurrence placement (pipeline strips).
#include <gtest/gtest.h>

#include "compmodel/compile.hpp"
#include "fortran/parser.hpp"
#include "pcfg/pcfg.hpp"

namespace al::compmodel {
namespace {

using fortran::parse_and_check;
using fortran::Program;

struct Compiled {
  Program prog;
  pcfg::Pcfg pcfg;
  pcfg::PhaseDeps deps;
  layout::Layout layout;
  CompiledPhase result;

  Compiled(const std::string& src, int dist_dim, int procs = 8,
           const CompileOptions& opts = {}, int phase = 0, int rank = 2)
      : prog(parse_and_check(src)),
        pcfg(pcfg::Pcfg::build(prog)),
        deps(pcfg::analyze_dependences(pcfg.phase(phase), prog.symbols)),
        layout(layout::Alignment{}, layout::Distribution::block_1d(rank, dist_dim, procs)),
        result(compile_phase(pcfg.phase(phase), deps, layout, prog.symbols, opts)) {}

  int count(CommClass cls) const {
    int n = 0;
    for (const CommEvent& e : result.events) {
      if (e.cls == cls) ++n;
    }
    return n;
  }
  const CommEvent* first(CommClass cls) const {
    for (const CommEvent& e : result.events) {
      if (e.cls == cls) return &e;
    }
    return nullptr;
  }
};

const char* kStencil =
    "      parameter (n = 32)\n"
    "      real a(n,n), b(n,n)\n"
    "      do j = 1, n\n        do i = 2, n\n"
    "          a(i,j) = b(i-1,j)\n"
    "        enddo\n      enddo\n      end\n";

TEST(CompModel, AlignedAccessIsLocal) {
  Compiled c(
      "      parameter (n = 32)\n"
      "      real a(n,n), b(n,n)\n"
      "      do j = 1, n\n        do i = 1, n\n"
      "          a(i,j) = b(i,j)\n"
      "        enddo\n      enddo\n      end\n",
      /*dist_dim=*/0);
  EXPECT_TRUE(c.result.events.empty());
  EXPECT_DOUBLE_EQ(c.result.partitioned_fraction, 1.0);
  EXPECT_EQ(c.result.procs, 8);
}

TEST(CompModel, OffsetAlongDistributedDimIsShift) {
  Compiled c(kStencil, /*dist_dim=*/0);
  ASSERT_EQ(c.count(CommClass::Shift), 1);
  const CommEvent* e = c.first(CommClass::Shift);
  EXPECT_EQ(e->shift_distance, 1);
  // Boundary of b along dim 1: one column-cross-section = 32 reals,
  // strided (dim 1 is not the last dimension).
  EXPECT_DOUBLE_EQ(e->bytes, 32.0 * 4.0);
  EXPECT_EQ(e->stride, machine::Stride::NonUnit);
  EXPECT_DOUBLE_EQ(e->messages, 1.0);  // vectorized
}

TEST(CompModel, OffsetAlongSerialDimIsFree) {
  Compiled c(kStencil, /*dist_dim=*/1);
  EXPECT_TRUE(c.result.events.empty());
}

TEST(CompModel, LastDimBoundaryIsUnitStride) {
  Compiled c(
      "      parameter (n = 32)\n"
      "      real a(n,n), b(n,n)\n"
      "      do j = 2, n\n        do i = 1, n\n"
      "          a(i,j) = b(i,j-1)\n"
      "        enddo\n      enddo\n      end\n",
      /*dist_dim=*/1);
  const CommEvent* e = c.first(CommClass::Shift);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->stride, machine::Stride::Unit);
}

TEST(CompModel, InvariantReadBecomesBroadcast) {
  Compiled c(
      "      parameter (n = 32)\n"
      "      real a(n,n), b(n,n)\n"
      "      do j = 1, n\n        do i = 1, n\n"
      "          a(i,j) = b(1,j)\n"
      "        enddo\n      enddo\n      end\n",
      /*dist_dim=*/0);
  ASSERT_EQ(c.count(CommClass::Broadcast), 1);
  EXPECT_DOUBLE_EQ(c.first(CommClass::Broadcast)->bytes, 32.0 * 4.0);
}

TEST(CompModel, TransposedReadBecomesTranspose) {
  Compiled c(
      "      parameter (n = 32)\n"
      "      real a(n,n), b(n,n)\n"
      "      do j = 1, n\n        do i = 1, n\n"
      "          a(i,j) = b(j,i)\n"
      "        enddo\n      enddo\n      end\n",
      /*dist_dim=*/0);
  ASSERT_EQ(c.count(CommClass::Transpose), 1);
  EXPECT_DOUBLE_EQ(c.first(CommClass::Transpose)->bytes, 32.0 * 32.0 * 4.0);
}

TEST(CompModel, RecurrencePlacementInnerLoop) {
  // Dependence on the INNER loop: one strip per outer iteration.
  Compiled c(
      "      parameter (n = 32)\n"
      "      real x(n,n)\n"
      "      do j = 1, n\n        do i = 2, n\n"
      "          x(i,j) = x(i-1,j)\n"
      "        enddo\n      enddo\n      end\n",
      /*dist_dim=*/0);
  ASSERT_EQ(c.count(CommClass::Recurrence), 1);
  const CommEvent* e = c.first(CommClass::Recurrence);
  EXPECT_EQ(e->strips, 32);               // one per j iteration
  EXPECT_DOUBLE_EQ(e->bytes, 4.0);        // one element per strip
  EXPECT_TRUE(c.result.has_recurrence());
  EXPECT_EQ(c.result.recurrence_strips(), 32);
}

TEST(CompModel, RecurrencePlacementOuterLoop) {
  // Dependence on the OUTER loop: a single strip (sequential chain).
  Compiled c(
      "      parameter (n = 32)\n"
      "      real x(n,n)\n"
      "      do j = 2, n\n        do i = 1, n\n"
      "          x(i,j) = x(i,j-1)\n"
      "        enddo\n      enddo\n      end\n",
      /*dist_dim=*/1);
  const CommEvent* e = c.first(CommClass::Recurrence);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->strips, 1);
  EXPECT_DOUBLE_EQ(e->bytes, 32.0 * 4.0);  // whole cross-section at once
}

TEST(CompModel, RecurrenceOnSerialDimIsFree) {
  Compiled c(
      "      parameter (n = 32)\n"
      "      real x(n,n)\n"
      "      do j = 1, n\n        do i = 2, n\n"
      "          x(i,j) = x(i-1,j)\n"
      "        enddo\n      enddo\n      end\n",
      /*dist_dim=*/1);
  EXPECT_TRUE(c.result.events.empty());
  EXPECT_FALSE(c.result.has_recurrence());
}

TEST(CompModel, UnpartitionedStatementGathers) {
  // d is written at a FIXED position along the distributed dimension, so
  // the statement executes on one slab; reading b across the whole
  // distributed dimension forces a gather onto that slab.
  Compiled c(
      "      parameter (n = 32)\n"
      "      real d(n,n), b(n,n)\n"
      "      do j = 1, n\n"
      "        do i = 1, n\n"
      "          d(i,1) = b(i,j)\n"
      "        enddo\n"
      "      enddo\n      end\n",
      /*dist_dim=*/1);
  EXPECT_EQ(c.count(CommClass::Gather), 1);
  EXPECT_LT(c.result.partitioned_fraction, 1.0);
}

TEST(CompModel, VectorizationOffSendsElements) {
  CompileOptions off;
  off.message_vectorization = false;
  Compiled on(kStencil, 0);
  Compiled c(kStencil, 0, 8, off);
  const CommEvent* ev = c.first(CommClass::Shift);
  const CommEvent* ev_on = on.first(CommClass::Shift);
  ASSERT_NE(ev, nullptr);
  ASSERT_NE(ev_on, nullptr);
  EXPECT_DOUBLE_EQ(ev->bytes, 4.0);        // one element per message
  EXPECT_DOUBLE_EQ(ev->messages, 32.0);    // whole boundary, one at a time
  EXPECT_DOUBLE_EQ(ev->bytes * ev->messages, ev_on->bytes * ev_on->messages);
}

TEST(CompModel, CoalescingMergesSameArrayShifts) {
  // Two reads of b at distance 1 and 2: coalesced into ONE message paying
  // the larger boundary.
  const char* src =
      "      parameter (n = 32)\n"
      "      real a(n,n), b(n,n)\n"
      "      do j = 1, n\n        do i = 3, n\n"
      "          a(i,j) = b(i-1,j) + b(i-2,j)\n"
      "        enddo\n      enddo\n      end\n";
  Compiled merged(src, 0);
  EXPECT_EQ(merged.count(CommClass::Shift), 1);
  EXPECT_EQ(merged.first(CommClass::Shift)->shift_distance, 2);
  CompileOptions off;
  off.message_coalescing = false;
  Compiled split(src, 0, 8, off);
  EXPECT_EQ(split.count(CommClass::Shift), 2);
}

TEST(CompModel, ComputationSplitsAcrossProcs) {
  const char* src =
      "      parameter (n = 32)\n"
      "      real a(n,n), b(n,n)\n"
      "      do j = 1, n\n        do i = 1, n\n"
      "          a(i,j) = b(i,j)*2.0 + 1.0\n"
      "        enddo\n      enddo\n      end\n";
  Compiled c8(src, 0, 8);
  Compiled c2(src, 0, 2);
  EXPECT_GT(c8.result.flops_real, 0.0);
  EXPECT_NEAR(c2.result.flops_real / c8.result.flops_real, 4.0, 1e-9);
  EXPECT_NEAR(c2.result.mem_accesses / c8.result.mem_accesses, 4.0, 1e-9);
}

} // namespace
} // namespace al::compmodel
