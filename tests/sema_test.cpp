// Semantic analysis tests: name resolution, implicit typing, intrinsic
// rewriting, rank checking.
#include <gtest/gtest.h>

#include "fortran/parser.hpp"
#include "fortran/sema.hpp"
#include "fortran/symbols.hpp"

namespace al::fortran {
namespace {

Program analyze_ok(std::string_view src) {
  DiagnosticEngine diags;
  auto p = parse_program(src, diags);
  EXPECT_TRUE(p.has_value()) << diags.str();
  analyze(*p, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.str();
  return std::move(*p);
}

void expect_sema_error(std::string_view src) {
  DiagnosticEngine diags;
  auto p = parse_program(src, diags);
  ASSERT_TRUE(p.has_value()) << diags.str();
  analyze(*p, diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Sema, ImplicitTypingRule) {
  Program p = analyze_ok("      i = 1\n      x = 2.0\n      end\n");
  EXPECT_EQ(p.symbols.at(p.symbols.lookup("i")).type, ScalarType::Integer);
  EXPECT_EQ(p.symbols.at(p.symbols.lookup("x")).type, ScalarType::Real);
}

TEST(Sema, ImplicitRangeBoundaries) {
  Program p = analyze_ok("      h = 1\n      n = 2\n      o = 3\n      end\n");
  EXPECT_EQ(p.symbols.at(p.symbols.lookup("h")).type, ScalarType::Real);
  EXPECT_EQ(p.symbols.at(p.symbols.lookup("n")).type, ScalarType::Integer);
  EXPECT_EQ(p.symbols.at(p.symbols.lookup("o")).type, ScalarType::Real);
}

TEST(Sema, ResolvesArrayRefs) {
  Program p = analyze_ok(
      "      real a(4)\n"
      "      a(1) = 2.0\n"
      "      end\n");
  const auto& assign = static_cast<const AssignStmt&>(*p.body[0]);
  const auto& ref = static_cast<const ArrayRefExpr&>(*assign.lhs);
  EXPECT_EQ(ref.symbol, p.symbols.lookup("a"));
}

TEST(Sema, RewritesIntrinsicCalls) {
  Program p = analyze_ok("      x = sqrt(abs(y))\n      end\n");
  const auto& assign = static_cast<const AssignStmt&>(*p.body[0]);
  ASSERT_EQ(assign.rhs->kind, ExprKind::Intrinsic);
  const auto& call = static_cast<const IntrinsicExpr&>(*assign.rhs);
  EXPECT_EQ(call.name, "sqrt");
  ASSERT_EQ(call.args.size(), 1u);
  EXPECT_EQ(call.args[0]->kind, ExprKind::Intrinsic);
}

TEST(Sema, DeclaredArrayShadowsIntrinsicName) {
  // An array named "max" must be treated as an array, not the intrinsic.
  Program p = analyze_ok(
      "      real max(3)\n"
      "      x = max(2)\n"
      "      end\n");
  const auto& assign = static_cast<const AssignStmt&>(*p.body[0]);
  EXPECT_EQ(assign.rhs->kind, ExprKind::ArrayRef);
}

TEST(Sema, UndeclaredArrayIsError) {
  expect_sema_error("      x = notdeclared(3)\n      end\n");
}

TEST(Sema, RankMismatchIsError) {
  expect_sema_error(
      "      real a(4,4)\n"
      "      x = a(1)\n"
      "      end\n");
}

TEST(Sema, ArrayWithoutSubscriptsIsError) {
  expect_sema_error(
      "      real a(4)\n"
      "      x = a\n"
      "      end\n");
}

TEST(Sema, AssignToParameterIsError) {
  expect_sema_error(
      "      parameter (n = 3)\n"
      "      n = 4\n"
      "      end\n");
}

TEST(Sema, AssignToIntrinsicIsError) {
  expect_sema_error("      sqrt(2.0) = 1.0\n      end\n");
}

TEST(Sema, DoVariableMustBeIntegerScalar) {
  expect_sema_error(
      "      do x = 1, 3\n"  // x implicitly REAL
      "        y = x\n"
      "      enddo\n"
      "      end\n");
}

TEST(Sema, DoOverArrayNameIsError) {
  expect_sema_error(
      "      integer a(3)\n"
      "      do a = 1, 3\n"
      "        y = 1\n"
      "      enddo\n"
      "      end\n");
}

TEST(Sema, ScalarUsedAsFunctionIsError) {
  expect_sema_error(
      "      integer s\n"
      "      x = s(1)\n"
      "      end\n");
}

TEST(FoldConstant, Basics) {
  Program p = analyze_ok("      parameter (n = 6)\n      end\n");
  DiagnosticEngine diags;
  auto toks_prog = parse_program("      parameter (n = 6)\n      k = n\n      end\n", diags);
  // Direct folding checks through the public helper:
  const SymbolTable& syms = p.symbols;
  IntConstExpr c(42, {});
  EXPECT_EQ(fold_integer_constant(c, syms), 42);
  VarExpr v("n", {});
  EXPECT_EQ(fold_integer_constant(v, syms), 6);
  VarExpr unknown("zz", {});
  EXPECT_FALSE(fold_integer_constant(unknown, syms).has_value());
}

TEST(Intrinsics, RegistryAndWeights) {
  EXPECT_TRUE(is_intrinsic("sqrt"));
  EXPECT_TRUE(is_intrinsic("dmax1"));
  EXPECT_FALSE(is_intrinsic("frobnicate"));
  EXPECT_GT(intrinsic_flop_weight("sqrt"), intrinsic_flop_weight("abs"));
  EXPECT_GT(intrinsic_flop_weight("exp"), intrinsic_flop_weight("mod"));
}

TEST(ScalarTypes, SizesAndNames) {
  EXPECT_EQ(size_in_bytes(ScalarType::Real), 4);
  EXPECT_EQ(size_in_bytes(ScalarType::DoublePrecision), 8);
  EXPECT_EQ(size_in_bytes(ScalarType::Integer), 4);
  EXPECT_STREQ(to_string(ScalarType::DoublePrecision), "double precision");
}

} // namespace
} // namespace al::fortran
