// Reentrancy audit of driver::run_tool, backed by a test: the service's
// workers call the whole pipeline concurrently from independent threads
// (NOT the estimator's own worker pool -- each call here is fully serial
// inside, threads=1), so every run must be isolated from its neighbours.
// The audit found no mutable function-local statics and no shared caches
// across ToolResult instances; this test makes the claim checkable under
// -DAL_SANITIZE=thread (ctest -L tsan), and additionally pins down
// MetricsScope: each thread's scope must attribute exactly its own
// request's counters even while eight pipelines increment the same
// process-global counters.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "corpus/corpus.hpp"
#include "driver/tool.hpp"
#include "support/metrics.hpp"

namespace al::driver {
namespace {

std::vector<corpus::TestCase> reentrancy_corpus() {
  return {{"adi", 32, corpus::Dtype::DoublePrecision, 4},
          {"erlebacher", 16, corpus::Dtype::DoublePrecision, 4},
          {"tomcatv", 32, corpus::Dtype::DoublePrecision, 4},
          {"shallow", 32, corpus::Dtype::Real, 4}};
}

std::unique_ptr<ToolResult> run_serial(const corpus::TestCase& c) {
  ToolOptions opts;
  opts.procs = c.procs;
  opts.threads = 1;
  return run_tool(corpus::source_for(c), opts);
}

/// The decision-relevant outputs of a run, for exact comparison.
std::string fingerprint(const ToolResult& r) {
  std::string fp;
  for (int p = 0; p < r.pcfg.num_phases(); ++p) {
    fp += std::to_string(r.selection.chosen.at(static_cast<std::size_t>(p)));
    fp += ':';
    fp += r.chosen_layout(p).str(r.program.symbols);
    fp += '\n';
  }
  fp += "total=" + std::to_string(r.selection.total_cost_us);
  fp += " node=" + std::to_string(r.selection.node_cost_us);
  fp += " remap=" + std::to_string(r.selection.remap_cost_us);
  return fp;
}

TEST(DriverReentrancy, EightThreadsOverTheCorpusMatchSerialRuns) {
  const std::vector<corpus::TestCase> cases = reentrancy_corpus();

  // Serial references first, single-threaded.
  std::vector<std::string> expected;
  for (const corpus::TestCase& c : cases) expected.push_back(fingerprint(*run_serial(c)));

  // 8 threads, each running the whole 4-program corpus concurrently with
  // everyone else (32 pipeline executions in flight across 8 threads).
  constexpr int kThreads = 8;
  std::vector<std::vector<std::string>> got(kThreads);
  {
    std::vector<std::jthread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (const corpus::TestCase& c : cases)
          got[static_cast<std::size_t>(t)].push_back(fingerprint(*run_serial(c)));
      });
    }
  }

  for (int t = 0; t < kThreads; ++t)
    for (std::size_t i = 0; i < cases.size(); ++i)
      EXPECT_EQ(got[static_cast<std::size_t>(t)][i], expected[i])
          << cases[i].program << " on thread " << t;
}

TEST(DriverReentrancy, MetricsScopeAttributesPerThread) {
  const corpus::TestCase c{"adi", 32, corpus::Dtype::DoublePrecision, 2};
  constexpr int kThreads = 8;
  std::vector<std::uint64_t> runs_delta(kThreads, 0);
  std::vector<std::uint64_t> total_deltas(kThreads, 0);
  {
    std::vector<std::jthread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        support::MetricsScope scope;
        run_serial(c);
        runs_delta[static_cast<std::size_t>(t)] = scope.delta("tool.runs");
        for (const support::MetricsScope::Delta& d : scope.deltas())
          total_deltas[static_cast<std::size_t>(t)] += d.count;
      });
    }
  }
  for (int t = 0; t < kThreads; ++t) {
    // The global counter saw 8 increments; each scope saw exactly its own.
    EXPECT_EQ(runs_delta[static_cast<std::size_t>(t)], 1u) << "thread " << t;
    EXPECT_GT(total_deltas[static_cast<std::size_t>(t)], 1u) << "thread " << t;
  }
}

} // namespace
} // namespace al::driver
