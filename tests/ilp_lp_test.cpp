// Unit tests for the LP model and the bounded-variable two-phase simplex.
#include <gtest/gtest.h>

#include "ilp/lp.hpp"
#include "ilp/simplex.hpp"
#include "support/contracts.hpp"

namespace al::ilp {
namespace {

TEST(Model, AddVariableAndLookup) {
  Model m;
  const int x = m.add_binary("x", 3.0);
  const int y = m.add_continuous("y", -1.0, 5.0, 2.0);
  EXPECT_EQ(x, 0);
  EXPECT_EQ(y, 1);
  EXPECT_EQ(m.num_variables(), 2);
  EXPECT_TRUE(m.variable(x).integer);
  EXPECT_FALSE(m.variable(y).integer);
  EXPECT_DOUBLE_EQ(m.variable(y).lower, -1.0);
  EXPECT_DOUBLE_EQ(m.variable(y).upper, 5.0);
}

TEST(Model, RejectsCrossedBounds) {
  Model m;
  EXPECT_THROW(m.add_continuous("x", 2.0, 1.0, 0.0), ContractViolation);
}

TEST(Model, RejectsInfiniteIntegerBounds) {
  Model m;
  EXPECT_THROW(m.add_variable("x", 0.0, kInfinity, 1.0, true), ContractViolation);
}

TEST(Model, ConstraintValidatesVariableIndices) {
  Model m;
  m.add_binary("x", 1.0);
  EXPECT_THROW(m.add_constraint("bad", {{5, 1.0}}, Rel::LE, 1.0), ContractViolation);
}

TEST(Model, ObjectiveValue) {
  Model m;
  m.add_binary("x", 3.0);
  m.add_binary("y", -2.0);
  EXPECT_DOUBLE_EQ(m.objective_value({1.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(m.objective_value({0.0, 1.0}), -2.0);
}

TEST(Model, IsFeasibleChecksRowsAndBounds) {
  Model m;
  const int x = m.add_continuous("x", 0.0, 2.0, 0.0);
  m.add_constraint("c", {{x, 1.0}}, Rel::LE, 1.5);
  EXPECT_TRUE(m.is_feasible({1.0}));
  EXPECT_FALSE(m.is_feasible({1.9}));   // violates the row
  EXPECT_FALSE(m.is_feasible({-0.5}));  // violates the bound
  EXPECT_FALSE(m.is_feasible({}));      // wrong arity
}

TEST(Model, IsFeasibleEqualityTolerance) {
  Model m;
  const int x = m.add_continuous("x", 0.0, 10.0, 0.0);
  m.add_constraint("e", {{x, 2.0}}, Rel::EQ, 4.0);
  EXPECT_TRUE(m.is_feasible({2.0}));
  EXPECT_TRUE(m.is_feasible({2.0 + 1e-8}));
  EXPECT_FALSE(m.is_feasible({2.1}));
}

TEST(Model, StrMentionsEverything) {
  Model m(Sense::Maximize);
  const int x = m.add_binary("price", 7.0);
  m.add_constraint("cap", {{x, 2.0}}, Rel::LE, 3.0);
  const std::string s = m.str();
  EXPECT_NE(s.find("maximize"), std::string::npos);
  EXPECT_NE(s.find("price"), std::string::npos);
  EXPECT_NE(s.find("cap"), std::string::npos);
  EXPECT_NE(s.find("integer"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Simplex
// ---------------------------------------------------------------------------

TEST(Simplex, BasicMaximize) {
  // max 3x + 2y  st  x + y <= 4, x <= 2  ->  (2,2), obj 10.
  Model m(Sense::Maximize);
  const int x = m.add_continuous("x", 0.0, kInfinity, 3.0);
  const int y = m.add_continuous("y", 0.0, kInfinity, 2.0);
  m.add_constraint("c1", {{x, 1.0}, {y, 1.0}}, Rel::LE, 4.0);
  m.add_constraint("c2", {{x, 1.0}}, Rel::LE, 2.0);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, SolveStatus::Optimal);
  EXPECT_NEAR(r.objective, 10.0, 1e-9);
  EXPECT_NEAR(r.x[0], 2.0, 1e-9);
  EXPECT_NEAR(r.x[1], 2.0, 1e-9);
}

TEST(Simplex, EqualityAndGe) {
  // min x + y  st  x + y >= 3, x - y = 1  ->  (2,1), obj 3.
  Model m(Sense::Minimize);
  const int x = m.add_continuous("x", 0.0, kInfinity, 1.0);
  const int y = m.add_continuous("y", 0.0, kInfinity, 1.0);
  m.add_constraint("g", {{x, 1.0}, {y, 1.0}}, Rel::GE, 3.0);
  m.add_constraint("e", {{x, 1.0}, {y, -1.0}}, Rel::EQ, 1.0);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, SolveStatus::Optimal);
  EXPECT_NEAR(r.objective, 3.0, 1e-9);
  EXPECT_NEAR(r.x[0], 2.0, 1e-9);
  EXPECT_NEAR(r.x[1], 1.0, 1e-9);
}

TEST(Simplex, RespectsUpperBounds) {
  // max x  st  0 <= x <= 7 (no rows at all).
  Model m(Sense::Maximize);
  m.add_continuous("x", 0.0, 7.0, 1.0);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, SolveStatus::Optimal);
  EXPECT_NEAR(r.objective, 7.0, 1e-9);
}

TEST(Simplex, NegativeLowerBound) {
  // min x  st  x >= -3 (bound), x + y >= 0, y <= 1.
  Model m(Sense::Minimize);
  const int x = m.add_continuous("x", -3.0, kInfinity, 1.0);
  const int y = m.add_continuous("y", 0.0, 1.0, 0.0);
  m.add_constraint("g", {{x, 1.0}, {y, 1.0}}, Rel::GE, 0.0);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, SolveStatus::Optimal);
  EXPECT_NEAR(r.x[0], -1.0, 1e-9);
}

TEST(Simplex, DetectsInfeasible) {
  Model m(Sense::Minimize);
  const int x = m.add_continuous("x", 0.0, 1.0, 1.0);
  m.add_constraint("c", {{x, 1.0}}, Rel::GE, 2.0);
  EXPECT_EQ(solve_lp(m).status, SolveStatus::Infeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Model m(Sense::Maximize);
  const int x = m.add_continuous("x", 0.0, kInfinity, 1.0);
  const int y = m.add_continuous("y", 0.0, kInfinity, 0.0);
  m.add_constraint("c", {{x, 1.0}, {y, -1.0}}, Rel::LE, 1.0);
  EXPECT_EQ(solve_lp(m).status, SolveStatus::Unbounded);
}

TEST(Simplex, BoundOverridesForBranchAndBound) {
  Model m(Sense::Maximize);
  const int x = m.add_binary("x", 5.0);
  const int y = m.add_binary("y", 4.0);
  m.add_constraint("c", {{x, 1.0}, {y, 1.0}}, Rel::LE, 2.0);
  // Fix x = 0 via overrides.
  const LpResult r = solve_lp(m, {0.0, 0.0}, {0.0, 1.0});
  ASSERT_EQ(r.status, SolveStatus::Optimal);
  EXPECT_NEAR(r.x[0], 0.0, 1e-9);
  EXPECT_NEAR(r.objective, 4.0, 1e-9);
}

TEST(Simplex, CrossedOverridesAreInfeasible) {
  Model m(Sense::Maximize);
  m.add_binary("x", 1.0);
  const LpResult r = solve_lp(m, {1.0}, {0.0});
  EXPECT_EQ(r.status, SolveStatus::Infeasible);
}

TEST(Simplex, DuplicateTermsAreSummed) {
  // x + x <= 3  ->  x <= 1.5.
  Model m(Sense::Maximize);
  const int x = m.add_continuous("x", 0.0, kInfinity, 1.0);
  m.add_constraint("c", {{x, 1.0}, {x, 1.0}}, Rel::LE, 3.0);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, SolveStatus::Optimal);
  EXPECT_NEAR(r.objective, 1.5, 1e-9);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Many redundant constraints through the same vertex.
  Model m(Sense::Maximize);
  const int x = m.add_continuous("x", 0.0, kInfinity, 1.0);
  const int y = m.add_continuous("y", 0.0, kInfinity, 1.0);
  for (int k = 1; k <= 8; ++k) {
    m.add_constraint("c" + std::to_string(k),
                     {{x, static_cast<double>(k)}, {y, static_cast<double>(k)}}, Rel::LE,
                     static_cast<double>(2 * k));
  }
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, SolveStatus::Optimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-9);
}

TEST(Simplex, NegativeRhsRow) {
  // -x <= -2  (i.e. x >= 2) with min x.
  Model m(Sense::Minimize);
  const int x = m.add_continuous("x", 0.0, kInfinity, 1.0);
  m.add_constraint("c", {{x, -1.0}}, Rel::LE, -2.0);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, SolveStatus::Optimal);
  EXPECT_NEAR(r.x[0], 2.0, 1e-9);
}

TEST(Simplex, FixedVariableStaysFixed) {
  Model m(Sense::Maximize);
  const int x = m.add_continuous("x", 2.5, 2.5, 10.0);
  const int y = m.add_continuous("y", 0.0, 1.0, 1.0);
  m.add_constraint("c", {{x, 1.0}, {y, 1.0}}, Rel::LE, 4.0);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, SolveStatus::Optimal);
  EXPECT_NEAR(r.x[0], 2.5, 1e-9);
  EXPECT_NEAR(r.x[1], 1.0, 1e-9);
}

TEST(Simplex, StatusStrings) {
  EXPECT_STREQ(to_string(SolveStatus::Optimal), "optimal");
  EXPECT_STREQ(to_string(SolveStatus::Feasible), "feasible");
  EXPECT_STREQ(to_string(SolveStatus::Infeasible), "infeasible");
  EXPECT_STREQ(to_string(SolveStatus::Unbounded), "unbounded");
  EXPECT_STREQ(to_string(SolveStatus::IterationLimit), "iteration-limit");
  EXPECT_STREQ(to_string(SolveStatus::NodeLimit), "node-limit");
  EXPECT_STREQ(to_string(SolveStatus::TimeLimit), "time-limit");
}

TEST(Simplex, HasSolutionLattice) {
  EXPECT_TRUE(has_solution(SolveStatus::Optimal));
  EXPECT_TRUE(has_solution(SolveStatus::Feasible));
  EXPECT_FALSE(has_solution(SolveStatus::Infeasible));
  EXPECT_FALSE(has_solution(SolveStatus::Unbounded));
  EXPECT_FALSE(has_solution(SolveStatus::IterationLimit));
  EXPECT_FALSE(has_solution(SolveStatus::NodeLimit));
  EXPECT_FALSE(has_solution(SolveStatus::TimeLimit));
}

TEST(Simplex, DegenerateRatioTestTies) {
  // Several rows block the entering variable at exactly the same (zero)
  // step: x <= 0 stated three times, then maximize x + y. The ratio test
  // must pick one blocking row deterministically (lowest index wins the
  // tie), not cycle, and still prove the optimum y = 3, x = 0.
  Model m(Sense::Maximize);
  const int x = m.add_continuous("x", 0.0, 10.0, 1.0);
  const int y = m.add_continuous("y", 0.0, 10.0, 1.0);
  m.add_constraint("c1", {{x, 1.0}}, Rel::LE, 0.0);
  m.add_constraint("c2", {{x, 2.0}}, Rel::LE, 0.0);
  m.add_constraint("c3", {{x, 3.0}}, Rel::LE, 0.0);
  m.add_constraint("cy", {{y, 1.0}}, Rel::LE, 3.0);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, SolveStatus::Optimal);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(x)], 0.0, 1e-9);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(y)], 3.0, 1e-9);
  EXPECT_NEAR(r.objective, 3.0, 1e-9);
}

TEST(Simplex, DegenerateVertexTransportation) {
  // Degenerate transportation instance: supplies (1, 1) and demands (1, 1)
  // force basis degeneracy at every vertex (total supply == total demand,
  // and the optimal vertex has a zero basic). Exercises repeated zero-step
  // pivots through the tie-breaking path; must terminate at cost 2.
  Model m(Sense::Minimize);
  int v[2][2];
  const double cost[2][2] = {{1.0, 9.0}, {9.0, 1.0}};
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 2; ++j)
      v[i][j] = m.add_continuous("x" + std::to_string(i) + std::to_string(j),
                                 0.0, kInfinity, cost[i][j]);
  for (int i = 0; i < 2; ++i) {
    m.add_constraint("s" + std::to_string(i),
                     {{v[i][0], 1.0}, {v[i][1], 1.0}}, Rel::EQ, 1.0);
    m.add_constraint("d" + std::to_string(i),
                     {{v[0][i], 1.0}, {v[1][i], 1.0}}, Rel::EQ, 1.0);
  }
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, SolveStatus::Optimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-9);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(v[0][0])], 1.0, 1e-9);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(v[1][1])], 1.0, 1e-9);
}

} // namespace
} // namespace al::ilp
