// Differential smoke over the generative engine (DESIGN.md section 14): a
// fast tier-1 slice of what tools/autolayout_fuzz runs at scale. Every
// generated program must hold invariants D1..D6 (verified selections, ILP <=
// DP <= greedy cost ordering, thread determinism, run-cache byte identity).
// The full harness runs thousands of programs; this suite pins >= 200 into
// every ctest run so a regression in any engine is caught before commit.
#include <gtest/gtest.h>

#include "gen/differential.hpp"
#include "gen/generator.hpp"
#include "gen/rng.hpp"
#include "select/ilp_selection.hpp"

namespace al {
namespace {

// 150 programs at the default shape: mixed ranks, branches, partial time
// loops. Together with the chain-only and deep cases below, the suite runs
// 200+ generated programs per ctest invocation.
TEST(Differential, DefaultShapeSmoke) {
  gen::Rng rng(20260807);
  gen::GenOptions gopts;
  gen::DiffOptions dopts;
  for (int k = 0; k < 150; ++k) {
    const gen::ProgramSpec spec = gen::random_spec(rng, gopts);
    const std::string src = gen::emit_fortran(spec);
    const gen::DiffResult res = gen::check_differential(src, dopts);
    ASSERT_TRUE(res.ok) << "program " << k << ": " << res.failure << "\n"
                        << src;
    // Unlimited budgets: the winning engine is always the proven-optimal ILP.
    EXPECT_EQ(res.engine, select::SelectionEngine::Ilp);
    EXPECT_GT(res.phases, 0);
    EXPECT_GT(res.candidates, 0);
  }
}

// Chain-only shape: no branches, no time loop, and pipeline dataflow (phase
// p reads exactly what phase p-1 wrote), so the layout graph is a chain and
// the exact DP's structural precondition holds for EVERY program. This keeps
// D3 (DP verifies and matches the ILP objective exactly) from being a
// rarely-taken path in the default mix.
TEST(Differential, ChainOnlyShapeExercisesDpOracle) {
  gen::Rng rng(777);
  gen::GenOptions gopts;
  gopts.branch_prob = 0.0;
  gopts.time_loop_prob = 0.0;
  gopts.pipeline_dataflow = true;
  // Rank-1 arrays can collapse to a single candidate layout per phase, which
  // leaves the layout graph with no remap edges and the DP without a chain.
  gopts.min_rank = 2;
  gen::DiffOptions dopts;
  int dp_hits = 0;
  for (int k = 0; k < 50; ++k) {
    const gen::ProgramSpec spec = gen::random_spec(rng, gopts);
    ASSERT_TRUE(spec.branches.empty());
    ASSERT_EQ(spec.time_steps, 0);
    const std::string src = gen::emit_fortran(spec);
    const gen::DiffResult res = gen::check_differential(src, dopts);
    ASSERT_TRUE(res.ok) << "program " << k << ": " << res.failure << "\n"
                        << src;
    if (res.dp_applicable) {
      ++dp_hits;
      // Both engines are exact, so the objectives must agree.
      EXPECT_NEAR(res.dp_cost_us, res.ilp_cost_us,
                  1e-6 * (1.0 + res.ilp_cost_us));
      EXPECT_LE(res.ilp_cost_us,
                res.greedy_cost_us * (1.0 + 1e-9) + 1e-9);
    }
  }
  EXPECT_EQ(dp_hits, 50) << "chain-shaped programs must all admit the DP";
}

// A handful of much deeper programs: tens of phases, more arrays, bigger
// selection MIPs. Slower per program, so only a few of them in tier 1.
TEST(Differential, DeepProgramsHoldInvariants) {
  gen::Rng rng(31337);
  gen::GenOptions gopts;
  gopts.min_phases = 24;
  gopts.max_phases = 40;
  gopts.max_arrays = 6;
  gen::DiffOptions dopts;
  for (int k = 0; k < 3; ++k) {
    const gen::ProgramSpec spec = gen::random_spec(rng, gopts);
    const std::string src = gen::emit_fortran(spec);
    const gen::DiffResult res = gen::check_differential(src, dopts);
    ASSERT_TRUE(res.ok) << "program " << k << ": " << res.failure << "\n"
                        << src;
    EXPECT_GE(res.phases, 24);
    // At least one candidate layout survives dominance pruning per phase.
    EXPECT_GE(res.candidates, res.phases);
  }
}

// check_differential is itself deterministic: same source, same options,
// bit-identical costs on repeat evaluation.
TEST(Differential, RepeatEvaluationIsBitIdentical) {
  gen::Rng rng(4242);
  const gen::ProgramSpec spec = gen::random_spec(rng, {});
  const std::string src = gen::emit_fortran(spec);
  gen::DiffOptions dopts;
  const gen::DiffResult a = gen::check_differential(src, dopts);
  const gen::DiffResult b = gen::check_differential(src, dopts);
  ASSERT_TRUE(a.ok) << a.failure;
  ASSERT_TRUE(b.ok) << b.failure;
  EXPECT_EQ(a.ilp_cost_us, b.ilp_cost_us);
  EXPECT_EQ(a.greedy_cost_us, b.greedy_cost_us);
  EXPECT_EQ(a.dp_applicable, b.dp_applicable);
  EXPECT_EQ(a.dp_cost_us, b.dp_cost_us);
  EXPECT_EQ(a.ilp_variables, b.ilp_variables);
}

} // namespace
} // namespace al
