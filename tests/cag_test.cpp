// CAG tests: the directed edge-weight protocol of section 3.1, connected
// components, conflict detection, merging, and the phase-CAG builder.
#include <gtest/gtest.h>

#include "cag/builder.hpp"
#include "cag/cag.hpp"
#include "fortran/parser.hpp"
#include "pcfg/pcfg.hpp"
#include "support/contracts.hpp"

namespace al::cag {
namespace {

using fortran::parse_and_check;
using fortran::Program;

struct TwoArrays {
  Program prog = parse_and_check("      real a(4,4), b(4,4)\n      end\n");
  NodeUniverse uni = NodeUniverse::from_program(prog);
  int a1 = uni.index(prog.symbols.lookup("a"), 0);
  int a2 = uni.index(prog.symbols.lookup("a"), 1);
  int b1 = uni.index(prog.symbols.lookup("b"), 0);
  int b2 = uni.index(prog.symbols.lookup("b"), 1);
};

TEST(NodeUniverse, Numbering) {
  TwoArrays f;
  EXPECT_EQ(f.uni.size(), 4);
  EXPECT_EQ(f.uni.array_of(f.a1), f.prog.symbols.lookup("a"));
  EXPECT_EQ(f.uni.dim_of(f.a2), 1);
  EXPECT_EQ(f.uni.index(99, 0), -1);
  EXPECT_EQ(f.uni.rank_of(f.prog.symbols.lookup("b")), 2);
  EXPECT_EQ(f.uni.nodes_of(f.prog.symbols.lookup("a")),
            (std::vector<int>{f.a1, f.a2}));
  EXPECT_EQ(f.uni.node_name(f.b2, f.prog.symbols), "b2");
}

TEST(Cag, FirstPreferenceCreatesDirectedEdge) {
  TwoArrays f;
  Cag g(&f.uni);
  g.add_preference(f.b1, f.a1, 100.0);
  ASSERT_EQ(g.edges().size(), 1u);
  EXPECT_DOUBLE_EQ(g.edges()[0].weight, 100.0);
  EXPECT_EQ(g.edges()[0].source, f.b1);
}

TEST(Cag, SameDirectionIsCacheHit) {
  // Section 3.1: re-encountering the preference along the current direction
  // leaves the CAG unchanged (the communicated values are cached).
  TwoArrays f;
  Cag g(&f.uni);
  g.add_preference(f.b1, f.a1, 100.0);
  g.add_preference(f.b1, f.a1, 100.0);
  ASSERT_EQ(g.edges().size(), 1u);
  EXPECT_DOUBLE_EQ(g.edges()[0].weight, 100.0);
}

TEST(Cag, OppositeDirectionAddsAndFlips) {
  TwoArrays f;
  Cag g(&f.uni);
  g.add_preference(f.b1, f.a1, 100.0);
  g.add_preference(f.a1, f.b1, 60.0);
  ASSERT_EQ(g.edges().size(), 1u);
  EXPECT_DOUBLE_EQ(g.edges()[0].weight, 160.0);
  EXPECT_EQ(g.edges()[0].source, f.a1);
  // And flipping again accumulates again.
  g.add_preference(f.b1, f.a1, 40.0);
  EXPECT_DOUBLE_EQ(g.edges()[0].weight, 200.0);
  EXPECT_EQ(g.edges()[0].source, f.b1);
}

TEST(Cag, SelfPreferenceRejected) {
  TwoArrays f;
  Cag g(&f.uni);
  EXPECT_THROW(g.add_preference(f.a1, f.a1, 1.0), ContractViolation);
}

TEST(Cag, ComponentsReflectEdges) {
  TwoArrays f;
  Cag g(&f.uni);
  g.add_preference(f.b1, f.a1, 10.0);
  const Partitioning p = g.components();
  EXPECT_TRUE(p.same(f.a1, f.b1));
  EXPECT_FALSE(p.same(f.a2, f.b2));
  EXPECT_EQ(g.touched_nodes(), (std::vector<int>{f.a1, f.b1}));
  EXPECT_EQ(g.touched_arrays().size(), 2u);
}

TEST(Cag, ConflictViaPath) {
  TwoArrays f;
  Cag g(&f.uni);
  g.add_preference(f.b1, f.a1, 10.0);
  EXPECT_FALSE(g.has_conflict());
  // Connect a2 to b1 as well: path a1 - b1 - a2 joins two dims of a.
  g.add_preference(f.b1, f.a2, 10.0);
  EXPECT_TRUE(g.has_conflict());
}

TEST(Cag, MergeScaledAccumulates) {
  TwoArrays f;
  Cag g1(&f.uni);
  g1.add_preference(f.b1, f.a1, 10.0);
  Cag g2(&f.uni);
  g2.add_preference(f.b1, f.a1, 5.0);
  g2.add_preference(f.b2, f.a2, 7.0);
  g1.merge_scaled(g2, 3.0);
  ASSERT_EQ(g1.edges().size(), 2u);
  EXPECT_DOUBLE_EQ(g1.total_weight(), 10.0 + 15.0 + 21.0);
}

TEST(Cag, RestrictedToArrays) {
  Program prog = parse_and_check("      real a(4), b(4), c(4)\n      end\n");
  NodeUniverse uni = NodeUniverse::from_program(prog);
  const int a = prog.symbols.lookup("a");
  const int b = prog.symbols.lookup("b");
  const int c = prog.symbols.lookup("c");
  Cag g(&uni);
  g.add_edge_weight(uni.index(a, 0), uni.index(b, 0), 5.0, uni.index(a, 0));
  g.add_edge_weight(uni.index(b, 0), uni.index(c, 0), 7.0, uni.index(b, 0));
  const Cag r = g.restricted_to({a, b});
  ASSERT_EQ(r.edges().size(), 1u);
  EXPECT_DOUBLE_EQ(r.edges()[0].weight, 5.0);
}

TEST(Cag, StrShowsDirections) {
  TwoArrays f;
  Cag g(&f.uni);
  g.add_preference(f.b1, f.a1, 12.0);
  const std::string s = g.str(f.prog.symbols);
  EXPECT_NE(s.find("b1->a1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Phase-CAG builder (owner-computes weights).
// ---------------------------------------------------------------------------

struct BuiltCag {
  Program prog;
  pcfg::Pcfg pcfg;
  NodeUniverse uni;
  Cag cag;

  explicit BuiltCag(const std::string& src, int phase = 0)
      : prog(parse_and_check(src)),
        pcfg(pcfg::Pcfg::build(prog)),
        uni(NodeUniverse::from_program(prog)),
        cag(build_phase_cag(pcfg.phase(phase), uni, prog.symbols)) {}
};

TEST(CagBuilder, CanonicalCouplingMakesParallelEdges) {
  BuiltCag b(
      "      parameter (n = 8)\n"
      "      real a(n,n), b(n,n)\n"
      "      do j = 1, n\n        do i = 1, n\n"
      "          a(i,j) = b(i,j)\n"
      "        enddo\n      enddo\n      end\n");
  // a1-b1 and a2-b2, value flow from b (the read side).
  ASSERT_EQ(b.cag.edges().size(), 2u);
  for (const CagEdge& e : b.cag.edges()) {
    EXPECT_EQ(b.uni.array_of(e.source), b.prog.symbols.lookup("b"));
    // Weight = whole volume of b in bytes (8x8 reals).
    EXPECT_DOUBLE_EQ(e.weight, 64.0 * 4.0);
  }
  EXPECT_FALSE(b.cag.has_conflict());
}

TEST(CagBuilder, TransposedCouplingCrossesDims) {
  BuiltCag b(
      "      parameter (n = 8)\n"
      "      real a(n,n), b(n,n)\n"
      "      do j = 1, n\n        do i = 1, n\n"
      "          a(i,j) = b(j,i)\n"
      "        enddo\n      enddo\n      end\n");
  // a1 couples with b2 (both indexed by i), a2 with b1.
  const int a = b.prog.symbols.lookup("a");
  const int bb = b.prog.symbols.lookup("b");
  const Partitioning p = b.cag.components();
  EXPECT_TRUE(p.same(b.uni.index(a, 0), b.uni.index(bb, 1)));
  EXPECT_TRUE(p.same(b.uni.index(a, 1), b.uni.index(bb, 0)));
  EXPECT_FALSE(b.cag.has_conflict());
}

TEST(CagBuilder, SelfRecurrenceAddsNoEdges) {
  BuiltCag b(
      "      parameter (n = 8)\n"
      "      real x(n,n)\n"
      "      do j = 1, n\n        do i = 2, n\n"
      "          x(i,j) = x(i-1,j)\n"
      "        enddo\n      enddo\n      end\n");
  EXPECT_TRUE(b.cag.empty());
}

TEST(CagBuilder, MixedCouplingCreatesConflictInOnePhase) {
  // a couples canonically with x AND transposed with x: conflict.
  BuiltCag b(
      "      parameter (n = 8)\n"
      "      real a(n,n), x(n,n)\n"
      "      do j = 1, n\n        do i = 1, n\n"
      "          a(i,j) = x(i,j) + x(j,i)\n"
      "        enddo\n      enddo\n      end\n");
  EXPECT_TRUE(b.cag.has_conflict());
}

TEST(CagBuilder, InvariantSubscriptsMakeNoPreference) {
  BuiltCag b(
      "      parameter (n = 8)\n"
      "      real a(n,n), b(n,n)\n"
      "      do j = 1, n\n        do i = 1, n\n"
      "          a(i,j) = b(1,j)\n"
      "        enddo\n      enddo\n      end\n");
  // Only the j-j coupling (a2-b2) exists; b's dim 1 is invariant.
  ASSERT_EQ(b.cag.edges().size(), 1u);
  EXPECT_EQ(b.uni.dim_of(b.cag.edges()[0].u), 1);
  EXPECT_EQ(b.uni.dim_of(b.cag.edges()[0].v), 1);
}

TEST(CagBuilder, LowerRankArrayEmbedding) {
  BuiltCag b(
      "      parameter (n = 8)\n"
      "      real a(n,n), v(n)\n"
      "      do j = 1, n\n        do i = 1, n\n"
      "          a(i,j) = v(j)\n"
      "        enddo\n      enddo\n      end\n");
  // v1 couples with a2 (both indexed by j).
  ASSERT_EQ(b.cag.edges().size(), 1u);
  const CagEdge& e = b.cag.edges()[0];
  const int a = b.prog.symbols.lookup("a");
  const int v = b.prog.symbols.lookup("v");
  const Partitioning p = b.cag.components();
  EXPECT_TRUE(p.same(b.uni.index(a, 1), b.uni.index(v, 0)));
  EXPECT_DOUBLE_EQ(e.weight, 8.0 * 4.0);  // volume of v
}

TEST(CagBuilder, CostScaleMultipliesWeights) {
  const char* src =
      "      parameter (n = 8)\n"
      "      real a(n,n), b(n,n)\n"
      "      do j = 1, n\n        do i = 1, n\n"
      "          a(i,j) = b(i,j)\n"
      "        enddo\n      enddo\n      end\n";
  BuiltCag plain(src);
  Program prog2 = parse_and_check(src);
  pcfg::Pcfg g2 = pcfg::Pcfg::build(prog2);
  NodeUniverse uni2 = NodeUniverse::from_program(prog2);
  CagBuildOptions opts;
  opts.cost_scale = 4.0;
  Cag scaled = build_phase_cag(g2.phase(0), uni2, prog2.symbols, opts);
  EXPECT_DOUBLE_EQ(scaled.total_weight(), plain.cag.total_weight() * 4.0);
}

} // namespace
} // namespace al::cag
