// Multi-dimensional distribution tests (the paper's future-work extension):
// 2-D mesh cost structure in the compiler model and the surface-to-volume
// payoff in the end-to-end estimates.
#include <gtest/gtest.h>

#include "compmodel/compile.hpp"
#include "corpus/corpus.hpp"
#include "driver/testcase.hpp"
#include "driver/tool.hpp"
#include "fortran/parser.hpp"
#include "pcfg/pcfg.hpp"

namespace al {
namespace {

layout::Distribution mesh_2d(int p1, int p2) {
  std::vector<layout::DimDistribution> dims(2);
  dims[0] = layout::DimDistribution{layout::DistKind::Block, p1, 1};
  dims[1] = layout::DimDistribution{layout::DistKind::Block, p2, 1};
  return layout::Distribution(std::move(dims));
}

struct Compiled2D {
  fortran::Program prog;
  pcfg::Pcfg pcfg;
  pcfg::PhaseDeps deps;
  compmodel::CompiledPhase result;

  Compiled2D(const std::string& src, const layout::Distribution& dist)
      : prog(fortran::parse_and_check(src)),
        pcfg(pcfg::Pcfg::build(prog)),
        deps(pcfg::analyze_dependences(pcfg.phase(0), prog.symbols)),
        result(compmodel::compile_phase(pcfg.phase(0), deps,
                                        layout::Layout({}, dist), prog.symbols)) {}
};

const char* kBothShifts =
    "      parameter (n = 64)\n"
    "      real a(n,n), b(n,n)\n"
    "      do j = 2, n\n        do i = 2, n\n"
    "          a(i,j) = b(i-1,j) + b(i,j-1)\n"
    "        enddo\n      enddo\n      end\n";

TEST(MultiDim, TwoDistributedDimsMakeTwoShifts) {
  Compiled2D c(kBothShifts, mesh_2d(4, 4));
  int shifts = 0;
  for (const auto& e : c.result.events) {
    if (e.cls == compmodel::CommClass::Shift) ++shifts;
  }
  EXPECT_EQ(shifts, 2);  // one boundary per distributed dimension
  EXPECT_EQ(c.result.procs, 16);
}

TEST(MultiDim, BoundaryShrinksWithTheOtherMeshDim) {
  // 1-D over 16 procs: boundary cross-section = full column (64 reals).
  // 4x4 mesh: each boundary is a quarter column (16 reals).
  Compiled2D one_d(kBothShifts, layout::Distribution::block_1d(2, 0, 16));
  Compiled2D mesh(kBothShifts, mesh_2d(4, 4));
  double one_d_bytes = 0.0;
  double mesh_bytes = 0.0;
  for (const auto& e : one_d.result.events) one_d_bytes += e.bytes;
  for (const auto& e : mesh.result.events) {
    EXPECT_DOUBLE_EQ(e.bytes, 64.0 / 4.0 * 4.0);  // 16 reals
    mesh_bytes = std::max(mesh_bytes, e.bytes);
  }
  EXPECT_DOUBLE_EQ(one_d_bytes, 64.0 * 4.0);
  EXPECT_LT(mesh_bytes, one_d_bytes);
}

TEST(MultiDim, ComputationDividesByTheWholeMesh) {
  Compiled2D mesh(kBothShifts, mesh_2d(4, 4));
  Compiled2D one_d(kBothShifts, layout::Distribution::block_1d(2, 0, 16));
  EXPECT_NEAR(mesh.result.flops_real, one_d.result.flops_real, 1e-9);
}

TEST(MultiDim, RecurrenceUnderMeshStillPipelines) {
  Compiled2D c(
      "      parameter (n = 64)\n"
      "      real x(n,n)\n"
      "      do j = 1, n\n        do i = 2, n\n"
      "          x(i,j) = x(i-1,j)\n"
      "        enddo\n      enddo\n      end\n",
      mesh_2d(4, 4));
  EXPECT_TRUE(c.result.has_recurrence());
  // Strips stay one-per-outer-iteration; the strip payload shrinks with
  // the second mesh dimension (but never below one element).
  const auto* rec = [&]() -> const compmodel::CommEvent* {
    for (const auto& e : c.result.events) {
      if (e.cls == compmodel::CommClass::Recurrence) return &e;
    }
    return nullptr;
  }();
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->strips, 64);
  EXPECT_DOUBLE_EQ(rec->bytes, 4.0);  // one element
}

TEST(MultiDim, ExtendedSearchBeats1DForBigStencilsAtScale) {
  corpus::TestCase c{"shallow", 512, corpus::Dtype::Real, 64};
  driver::ToolOptions basic;
  basic.procs = 64;
  driver::ToolOptions ext = basic;
  ext.distribution_strategy = distrib::Strategy::ExtendedExhaustive;
  auto tb = driver::run_tool(corpus::source_for(c), basic);
  auto te = driver::run_tool(corpus::source_for(c), ext);
  EXPECT_LT(te->selection.total_cost_us, tb->selection.total_cost_us);
  // And the winner really is a 2-D mesh on the main stencil phases.
  const layout::Distribution& d = te->chosen_layout(5).distribution();
  EXPECT_EQ(d.num_distributed(), 2);
}

TEST(MultiDim, SimulatorHandlesMeshLayouts) {
  corpus::TestCase c{"shallow", 128, corpus::Dtype::Real, 16};
  driver::ToolOptions ext;
  ext.procs = 16;
  ext.distribution_strategy = distrib::Strategy::ExtendedExhaustive;
  auto tool = driver::run_tool(corpus::source_for(c), ext);
  const auto rep = driver::evaluate_alternatives(*tool);
  for (const auto& alt : rep.alternatives) {
    EXPECT_GT(alt.meas_us, 0.0) << alt.name;
  }
}

} // namespace
} // namespace al
