// Semi-lattice of alignment information (paper, figure 2): refinement
// order, meet, join -- including parameterized property tests of the
// lattice laws on pseudo-random partitionings.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <utility>

#include "cag/cag.hpp"
#include "cag/lattice.hpp"
#include "fortran/parser.hpp"

namespace al::cag {
namespace {

TEST(Partitioning, StartsAsSingletons) {
  Partitioning p(4);
  EXPECT_EQ(p.num_blocks(), 4);
  EXPECT_FALSE(p.same(0, 1));
  EXPECT_TRUE(p.same(2, 2));
}

TEST(Partitioning, UniteMerges) {
  Partitioning p(4);
  p.unite(0, 1);
  p.unite(1, 2);
  EXPECT_TRUE(p.same(0, 2));
  EXPECT_FALSE(p.same(0, 3));
  EXPECT_EQ(p.num_blocks(), 2);
}

TEST(Partitioning, BlocksAreSortedByFirstMember) {
  Partitioning p(5);
  p.unite(3, 4);
  p.unite(0, 2);
  const auto blocks = p.blocks();
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_EQ(blocks[0], (std::vector<int>{0, 2}));
  EXPECT_EQ(blocks[1], (std::vector<int>{1}));
  EXPECT_EQ(blocks[2], (std::vector<int>{3, 4}));
}

// Regression: blocks() used to sort groups by their FRONT member only, which
// leaves equal-front groups in unspecified relative order under std::sort.
// Disjoint blocks cannot tie on their (minimum) front today, so the bug was
// latent -- this pins the stronger contract: full lexicographic order, and
// byte-identical output regardless of unite order, representative choice, or
// interleaved path-compression state.
TEST(Partitioning, BlocksAreDeterministicAcrossConstructionOrder) {
  const int n = 12;
  // Target partition: {0,4,8} {1,5,9} {2,6,10} {3,7,11}.
  const std::vector<std::pair<int, int>> unions = {
      {0, 4}, {4, 8}, {1, 5}, {5, 9}, {2, 6}, {6, 10}, {3, 7}, {7, 11}};
  std::vector<std::vector<std::vector<int>>> results;
  std::mt19937 rng(7);
  for (int t = 0; t < 20; ++t) {
    std::vector<std::pair<int, int>> shuffled = unions;
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    Partitioning p(n);
    for (const auto& [u, v] : shuffled) {
      // Randomize argument order (representative/rank choice) and poke
      // block() mid-build to vary path-compression state.
      if (rng() & 1u) {
        p.unite(u, v);
      } else {
        p.unite(v, u);
      }
      (void)p.block(static_cast<int>(rng() % static_cast<unsigned>(n)));
    }
    results.push_back(p.blocks());
  }
  for (std::size_t t = 1; t < results.size(); ++t) {
    EXPECT_EQ(results[0], results[t]) << "construction order " << t;
  }
  ASSERT_EQ(results[0].size(), 4u);
  EXPECT_EQ(results[0][0], (std::vector<int>{0, 4, 8}));
  EXPECT_EQ(results[0][3], (std::vector<int>{3, 7, 11}));
}

TEST(Partitioning, BlocksAreFullyLexicographicallySorted) {
  std::mt19937 rng(31);
  for (int t = 0; t < 50; ++t) {
    const int n = 3 + static_cast<int>(rng() % 20);
    Partitioning p(n);
    const int unions = static_cast<int>(rng() % static_cast<unsigned>(2 * n));
    for (int k = 0; k < unions; ++k) {
      p.unite(static_cast<int>(rng() % static_cast<unsigned>(n)),
              static_cast<int>(rng() % static_cast<unsigned>(n)));
    }
    const auto blocks = p.blocks();
    // Full lexicographic comparison (vector<int>::operator<), not front-only.
    EXPECT_TRUE(std::is_sorted(blocks.begin(), blocks.end()));
  }
}

TEST(Partitioning, RefinementBasics) {
  Partitioning bottom(4);
  Partitioning coarse(4);
  coarse.unite(0, 1);
  // Bottom refines everything; a coarsening does not refine the bottom.
  EXPECT_TRUE(bottom.refines(coarse));
  EXPECT_TRUE(bottom.refines(bottom));
  EXPECT_FALSE(coarse.refines(bottom));
  EXPECT_TRUE(coarse.refines(coarse));
}

TEST(Partitioning, IncomparableElements) {
  Partitioning a(4);
  a.unite(0, 1);
  Partitioning b(4);
  b.unite(2, 3);
  EXPECT_FALSE(a.refines(b));
  EXPECT_FALSE(b.refines(a));
}

TEST(Partitioning, MeetIsCommonRefinement) {
  Partitioning a(4);
  a.unite(0, 1);
  a.unite(1, 2);
  Partitioning b(4);
  b.unite(1, 2);
  b.unite(2, 3);
  const Partitioning m = Partitioning::meet(a, b);
  EXPECT_TRUE(m.same(1, 2));
  EXPECT_FALSE(m.same(0, 1));
  EXPECT_FALSE(m.same(2, 3));
}

TEST(Partitioning, JoinIsTransitiveUnion) {
  Partitioning a(4);
  a.unite(0, 1);
  Partitioning b(4);
  b.unite(1, 2);
  const Partitioning j = Partitioning::join(a, b);
  EXPECT_TRUE(j.same(0, 2));
  EXPECT_FALSE(j.same(0, 3));
}

TEST(Partitioning, EquivalenceIgnoresRepresentatives) {
  Partitioning a(4);
  a.unite(0, 1);
  Partitioning b(4);
  b.unite(1, 0);
  EXPECT_TRUE(a.equivalent(b));
}

TEST(Partitioning, ConflictDetection) {
  fortran::Program prog = fortran::parse_and_check(
      "      real a(2,2), b(2,2)\n      end\n");
  const NodeUniverse uni = NodeUniverse::from_program(prog);
  Partitioning ok(uni.size());
  ok.unite(uni.index(prog.symbols.lookup("a"), 0), uni.index(prog.symbols.lookup("b"), 0));
  EXPECT_FALSE(ok.has_conflict(uni));
  Partitioning bad = ok;
  bad.unite(uni.index(prog.symbols.lookup("a"), 0),
            uni.index(prog.symbols.lookup("a"), 1));
  EXPECT_TRUE(bad.has_conflict(uni));
}

TEST(Partitioning, StrSkipsSingletons) {
  fortran::Program prog = fortran::parse_and_check(
      "      real a(2,2), b(2,2)\n      end\n");
  const NodeUniverse uni = NodeUniverse::from_program(prog);
  Partitioning p(uni.size());
  p.unite(0, 2);
  const std::string s = p.str(uni, prog.symbols);
  EXPECT_NE(s.find("a1"), std::string::npos);
  EXPECT_NE(s.find("b1"), std::string::npos);
  EXPECT_EQ(s.find("a2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Lattice laws on pseudo-random partitionings.
// ---------------------------------------------------------------------------

Partitioning random_partitioning(std::mt19937& rng, int n) {
  Partitioning p(n);
  const int unions = static_cast<int>(rng() % static_cast<unsigned>(n));
  for (int k = 0; k < unions; ++k) {
    p.unite(static_cast<int>(rng() % static_cast<unsigned>(n)),
            static_cast<int>(rng() % static_cast<unsigned>(n)));
  }
  return p;
}

class LatticeLaws : public ::testing::TestWithParam<int> {};

TEST_P(LatticeLaws, MeetRefinesBothAndIsGreatest) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  for (int t = 0; t < 30; ++t) {
    const int n = 4 + static_cast<int>(rng() % 12);
    const Partitioning a = random_partitioning(rng, n);
    const Partitioning b = random_partitioning(rng, n);
    const Partitioning m = Partitioning::meet(a, b);
    EXPECT_TRUE(m.refines(a));
    EXPECT_TRUE(m.refines(b));
    // Greatest lower bound: any common refinement refines the meet.
    const Partitioning c = Partitioning::meet(m, random_partitioning(rng, n));
    if (c.refines(a) && c.refines(b)) {
      EXPECT_TRUE(c.refines(m));
    }
  }
}

TEST_P(LatticeLaws, JoinCoarsensBothAndIsLeast) {
  std::mt19937 rng(static_cast<unsigned>(GetParam() + 100));
  for (int t = 0; t < 30; ++t) {
    const int n = 4 + static_cast<int>(rng() % 12);
    const Partitioning a = random_partitioning(rng, n);
    const Partitioning b = random_partitioning(rng, n);
    const Partitioning j = Partitioning::join(a, b);
    EXPECT_TRUE(a.refines(j));
    EXPECT_TRUE(b.refines(j));
    // Least upper bound: any common coarsening is refined by the join.
    const Partitioning c = Partitioning::join(j, random_partitioning(rng, n));
    if (a.refines(c) && b.refines(c)) {
      EXPECT_TRUE(j.refines(c));
    }
  }
}

TEST_P(LatticeLaws, OperationsAreCommutativeAndIdempotent) {
  std::mt19937 rng(static_cast<unsigned>(GetParam() + 200));
  for (int t = 0; t < 30; ++t) {
    const int n = 4 + static_cast<int>(rng() % 12);
    const Partitioning a = random_partitioning(rng, n);
    const Partitioning b = random_partitioning(rng, n);
    EXPECT_TRUE(Partitioning::meet(a, b).equivalent(Partitioning::meet(b, a)));
    EXPECT_TRUE(Partitioning::join(a, b).equivalent(Partitioning::join(b, a)));
    EXPECT_TRUE(Partitioning::meet(a, a).equivalent(a));
    EXPECT_TRUE(Partitioning::join(a, a).equivalent(a));
  }
}

TEST_P(LatticeLaws, RefinementIsTransitive) {
  std::mt19937 rng(static_cast<unsigned>(GetParam() + 300));
  for (int t = 0; t < 30; ++t) {
    const int n = 4 + static_cast<int>(rng() % 12);
    const Partitioning a = random_partitioning(rng, n);
    const Partitioning b = Partitioning::join(a, random_partitioning(rng, n));
    const Partitioning c = Partitioning::join(b, random_partitioning(rng, n));
    EXPECT_TRUE(a.refines(b));
    EXPECT_TRUE(b.refines(c));
    EXPECT_TRUE(a.refines(c));
  }
}

TEST_P(LatticeLaws, AbsorptionLaws) {
  std::mt19937 rng(static_cast<unsigned>(GetParam() + 400));
  for (int t = 0; t < 30; ++t) {
    const int n = 4 + static_cast<int>(rng() % 12);
    const Partitioning a = random_partitioning(rng, n);
    const Partitioning b = random_partitioning(rng, n);
    EXPECT_TRUE(Partitioning::join(a, Partitioning::meet(a, b)).equivalent(a));
    EXPECT_TRUE(Partitioning::meet(a, Partitioning::join(a, b)).equivalent(a));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatticeLaws, ::testing::Values(11, 22, 33, 44, 55));

} // namespace
} // namespace al::cag
