// Coverage for the remaining corners: import dominance, greedy resolution
// validity properties, simulator internals, experiment-harness fallbacks,
// rendering of the extended distribution kinds, transposed ALIGN emission.
#include <gtest/gtest.h>

#include <random>

#include "cag/greedy_resolution.hpp"
#include "corpus/corpus.hpp"
#include "driver/emit.hpp"
#include "driver/testcase.hpp"
#include "driver/tool.hpp"
#include "fortran/parser.hpp"
#include "sim/spmd.hpp"

namespace al {
namespace {

// ---------------------------------------------------------------------------
// Import dominance margin.
// ---------------------------------------------------------------------------

TEST(ImportDominance, ScaledSourceAlwaysWinsConflicts) {
  // Sink prefers transposed (heavy); source prefers canonical (light).
  // Regardless of the raw weight imbalance, the IMPORT must carry the
  // source's scheme because of the dominance scaling.
  fortran::Program prog = fortran::parse_and_check(
      "      parameter (n = 16)\n"
      "      real x(n,n), y(n,n)\n"
      // Source class phase: canonical coupling, tiny arrays -> light edges.
      "      do j = 1, n\n        do i = 1, n\n"
      "          x(i,j) = y(i,j)\n"
      "        enddo\n      enddo\n"
      // Sink class phase: transposed coupling, twice (heavier).
      "      do j = 1, n\n        do i = 1, n\n"
      "          x(i,j) = y(j,i) + y(j,i)*2.0\n"
      "        enddo\n      enddo\n"
      "      end\n");
  pcfg::Pcfg g = pcfg::Pcfg::build(prog);
  cag::NodeUniverse uni = cag::NodeUniverse::from_program(prog);
  align::AlignmentAnalysis res = align::analyze_alignment(prog, g, uni, 2);
  ASSERT_EQ(res.partition.classes.size(), 2u);
  // Import class 0 (canonical) into class 1 (transposed).
  const align::ImportResult imp = align::import_candidate(
      res.partition.classes[0], res.partition.classes[1], 2);
  ASSERT_TRUE(imp.had_conflict);
  const int x = prog.symbols.lookup("x");
  const int y = prog.symbols.lookup("y");
  EXPECT_EQ(imp.candidate.alignment.axis_of(x, 0), imp.candidate.alignment.axis_of(y, 0));
  EXPECT_EQ(imp.candidate.alignment.axis_of(x, 1), imp.candidate.alignment.axis_of(y, 1));
}

// ---------------------------------------------------------------------------
// Greedy resolution: validity properties on random CAGs.
// ---------------------------------------------------------------------------

class GreedyValidity : public ::testing::TestWithParam<int> {};

TEST_P(GreedyValidity, AssignmentsAreAlwaysLegal) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 7919u);
  for (int trial = 0; trial < 12; ++trial) {
    const int narrays = 2 + static_cast<int>(rng() % 4);
    std::string src = "      program g\n";
    for (int a = 0; a < narrays; ++a)
      src += "      real w" + std::to_string(a) + "(4,4)\n";
    src += "      end\n";
    fortran::Program prog = fortran::parse_and_check(src);
    cag::NodeUniverse uni = cag::NodeUniverse::from_program(prog);
    cag::Cag g(&uni);
    for (int e = 0; e < narrays * 3; ++e) {
      const int a = static_cast<int>(rng() % static_cast<unsigned>(narrays));
      int b = static_cast<int>(rng() % static_cast<unsigned>(narrays));
      if (a == b) b = (b + 1) % narrays;
      g.add_edge_weight(uni.index(a, static_cast<int>(rng() % 2)),
                        uni.index(b, static_cast<int>(rng() % 2)),
                        1.0 + static_cast<double>(rng() % 100), uni.index(a, 0));
    }
    const cag::Resolution r = cag::resolve_alignment_greedy(g, 2);
    // Legality: two dims of one array never share a partition.
    for (int a = 0; a < narrays; ++a) {
      const auto nodes = uni.nodes_of(prog.symbols.lookup("w" + std::to_string(a)));
      const int p0 = r.part_of[static_cast<std::size_t>(nodes[0])];
      const int p1 = r.part_of[static_cast<std::size_t>(nodes[1])];
      if (p0 >= 0 && p1 >= 0) EXPECT_NE(p0, p1);
    }
    // Accounting: satisfied + cut == total weight.
    EXPECT_NEAR(r.satisfied_weight + r.cut_weight, g.total_weight(), 1e-9);
    // Satisfied edges really are in one partition.
    for (const cag::CagEdge& e : g.edges()) {
      const int pu = r.part_of[static_cast<std::size_t>(e.u)];
      const int pv = r.part_of[static_cast<std::size_t>(e.v)];
      if (r.info.same(e.u, e.v)) EXPECT_TRUE(pu >= 0 && pu == pv);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyValidity, ::testing::Values(3, 5, 7));

// ---------------------------------------------------------------------------
// Simulator internals.
// ---------------------------------------------------------------------------

TEST(SimInternals, UnevenBlocksSlowTheLastBoundary) {
  // extent 10 over 4 procs: ceil-blocks 3,3,3,1 -- the simulated phase is
  // bounded by the biggest block, so it must exceed extent 12 over 4
  // (blocks 3,3,3,3 with the same per-element work).
  fortran::Program prog = fortran::parse_and_check(
      "      parameter (n = 12)\n"
      "      real a(n,n)\n"
      "      do j = 1, n\n        do i = 1, n\n"
      "          a(i,j) = a(i,j)*0.5 + 1.0\n"
      "        enddo\n      enddo\n      end\n");
  pcfg::Pcfg g = pcfg::Pcfg::build(prog);
  const pcfg::PhaseDeps deps = pcfg::analyze_dependences(g.phase(0), prog.symbols);
  const machine::MachineModel m = machine::make_ipsc860();
  const sim::NetworkParams net = sim::NetworkParams::for_machine(m);

  sim::PhaseSimInput in;
  in.phase = &g.phase(0);
  in.deps = &deps;
  in.jitter_amplitude = 0.0;  // isolate the block-imbalance effect
  in.compiled = compmodel::compile_phase(
      g.phase(0), deps, layout::Layout({}, layout::Distribution::block_1d(2, 0, 4)),
      prog.symbols);
  in.dist_extent = 12;
  const double balanced = sim::simulate_phase_us(in, net, m);
  in.dist_extent = 10;  // same per-proc average work, skewed blocks
  const double skewed = sim::simulate_phase_us(in, net, m);
  EXPECT_GT(skewed, balanced * 1.1);
}

TEST(SimInternals, JitterAmplitudeZeroIsExactlyDeterministic) {
  fortran::Program prog = fortran::parse_and_check(
      "      parameter (n = 8)\n      real a(n)\n"
      "      do i = 1, n\n        a(i) = a(i) + 1.0\n      enddo\n      end\n");
  pcfg::Pcfg g = pcfg::Pcfg::build(prog);
  const pcfg::PhaseDeps deps = pcfg::analyze_dependences(g.phase(0), prog.symbols);
  const machine::MachineModel m = machine::make_ipsc860();
  const sim::NetworkParams net = sim::NetworkParams::for_machine(m);
  sim::PhaseSimInput in;
  in.phase = &g.phase(0);
  in.deps = &deps;
  in.jitter_amplitude = 0.0;
  in.compiled = compmodel::compile_phase(
      g.phase(0), deps, layout::Layout({}, layout::Distribution::block_1d(1, 0, 4)),
      prog.symbols);
  in.dist_extent = 8;
  in.seed = 1;
  const double t1 = sim::simulate_phase_us(in, net, m);
  in.seed = 999;  // seed must not matter at zero amplitude
  const double t2 = sim::simulate_phase_us(in, net, m);
  EXPECT_DOUBLE_EQ(t1, t2);
}

// ---------------------------------------------------------------------------
// Rendering of extended kinds; transposed ALIGN emission.
// ---------------------------------------------------------------------------

TEST(Rendering, CyclicDistributions) {
  std::vector<layout::DimDistribution> dims(2);
  dims[0] = layout::DimDistribution{layout::DistKind::Cyclic, 8, 1};
  dims[1] = layout::DimDistribution{layout::DistKind::BlockCyclic, 4, 16};
  const layout::Distribution d{std::move(dims)};
  EXPECT_EQ(d.str(), "(CYCLIC(8), CYCLIC(16)x4)");
  EXPECT_EQ(d.total_procs(), 32);
  EXPECT_EQ(d.single_distributed_dim(), -1);
  EXPECT_EQ(d.num_distributed(), 2);
}

TEST(Rendering, TransposedAlignDirective) {
  // Pin a transposed alignment and check the inverted ALIGN directive.
  const std::string src = corpus::adi_source(64, corpus::Dtype::DoublePrecision);
  fortran::Program probe = fortran::parse_and_check(src);
  layout::ArrayAlignment aa;
  aa.array = probe.symbols.lookup("x");
  aa.axis = {1, 0};
  layout::Alignment align;
  align.set(aa);
  driver::ToolOptions opts;
  opts.procs = 8;
  opts.pinned_phases.emplace_back(
      0, layout::Layout(align, layout::Distribution::block_1d(2, 0, 8)));
  auto r = driver::run_tool(src, opts);
  const std::string s = driver::emit_initial_directives(*r);
  EXPECT_NE(s.find("ALIGN x(i,j) WITH T(j,i)"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Experiment harness internals.
// ---------------------------------------------------------------------------

TEST(Harness, PinnedSpacesStillEvaluate) {
  // With a single-candidate (pinned) space, candidate_for_distribution must
  // fall back gracefully and the alternatives still evaluate.
  const std::string src = corpus::adi_source(64, corpus::Dtype::DoublePrecision);
  driver::ToolOptions opts;
  opts.procs = 8;
  opts.pinned_phases.emplace_back(
      0, layout::Layout({}, layout::Distribution::block_1d(2, 1, 8)));
  auto r = driver::run_tool(src, opts);
  const driver::CaseReport rep = driver::evaluate_alternatives(*r);
  EXPECT_GE(rep.alternatives.size(), 2u);
  for (const driver::Alternative& a : rep.alternatives) {
    EXPECT_EQ(a.assignment[0], 0);  // only one candidate exists for phase 0
  }
}

TEST(Harness, LossFractionIsZeroWhenToolWins) {
  corpus::TestCase c{"shallow", 128, corpus::Dtype::Real, 8};
  driver::ToolOptions opts;
  opts.procs = 8;
  auto r = driver::run_tool(corpus::source_for(c), opts);
  const driver::CaseReport rep = driver::evaluate_alternatives(*r);
  if (rep.picked_best) EXPECT_DOUBLE_EQ(rep.loss_fraction, 0.0);
  EXPECT_EQ(rep.best_measured >= 0, true);
  EXPECT_EQ(rep.best_estimated >= 0, true);
}

// ---------------------------------------------------------------------------
// Remap pair construction.
// ---------------------------------------------------------------------------

TEST(RemapPairs, ConnectConsecutiveReferencesAcrossGaps) {
  // q referenced in phases 0 and 2 only: the pair (0,2) must exist even
  // though phase 1 sits between them.
  fortran::Program prog = fortran::parse_and_check(
      "      parameter (n = 8)\n"
      "      real q(n,n), r(n,n)\n"
      "      do j = 1, n\n        do i = 1, n\n"
      "          q(i,j) = 1.0\n"
      "        enddo\n      enddo\n"
      "      do j = 1, n\n        do i = 1, n\n"
      "          r(i,j) = 2.0\n"
      "        enddo\n      enddo\n"
      "      do j = 1, n\n        do i = 1, n\n"
      "          r(i,j) = q(i,j)\n"
      "        enddo\n      enddo\n"
      "      end\n");
  pcfg::Pcfg g = pcfg::Pcfg::build(prog);
  const auto pairs = select::remap_pairs(g);
  const int q = prog.symbols.lookup("q");
  bool found = false;
  for (const select::RemapPair& p : pairs) {
    if (p.src == 0 && p.dst == 2) {
      found = true;
      EXPECT_NE(std::find(p.arrays.begin(), p.arrays.end(), q), p.arrays.end());
      EXPECT_DOUBLE_EQ(p.traversals, 1.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(RemapPairs, LoopWrapPairExists) {
  fortran::Program prog = fortran::parse_and_check(
      "      parameter (n = 8)\n"
      "      real q(n,n), r(n,n)\n"
      "      do it = 1, 10\n"
      "        do j = 1, n\n          do i = 1, n\n"
      "            q(i,j) = r(i,j)\n"
      "          enddo\n        enddo\n"
      "        do j = 1, n\n          do i = 1, n\n"
      "            r(i,j) = q(i,j)\n"
      "          enddo\n        enddo\n"
      "      enddo\n      end\n");
  pcfg::Pcfg g = pcfg::Pcfg::build(prog);
  const auto pairs = select::remap_pairs(g);
  bool wrap = false;
  for (const select::RemapPair& p : pairs) {
    if (p.src == 1 && p.dst == 0) {
      wrap = true;
      EXPECT_DOUBLE_EQ(p.traversals, 9.0);  // 10 iterations -> 9 wraps
    }
  }
  EXPECT_TRUE(wrap);
}

} // namespace
} // namespace al
