// Machine model / training set tests: interpolation semantics and the
// structural properties the estimator relies on (latency dominance,
// buffering penalty, pattern scaling).
#include <gtest/gtest.h>

#include "machine/training_set.hpp"
#include "support/contracts.hpp"

namespace al::machine {
namespace {

TEST(TrainingSetDB, EmptyDbIsFree) {
  TrainingSetDB db;
  EXPECT_DOUBLE_EQ(db.lookup(CommPattern::Shift, 4, 100.0, Stride::Unit,
                             LatencyClass::High),
                   0.0);
}

TEST(TrainingSetDB, ExactSampleHit) {
  TrainingSetDB db;
  db.add({CommPattern::Shift, 4, 100.0, Stride::Unit, LatencyClass::High, 42.0});
  EXPECT_DOUBLE_EQ(db.lookup(CommPattern::Shift, 4, 100.0, Stride::Unit,
                             LatencyClass::High),
                   42.0);
}

TEST(TrainingSetDB, LinearInterpolationInBytes) {
  TrainingSetDB db;
  db.add({CommPattern::Shift, 4, 100.0, Stride::Unit, LatencyClass::High, 10.0});
  db.add({CommPattern::Shift, 4, 300.0, Stride::Unit, LatencyClass::High, 30.0});
  EXPECT_NEAR(db.lookup(CommPattern::Shift, 4, 200.0, Stride::Unit, LatencyClass::High),
              20.0, 1e-9);
}

TEST(TrainingSetDB, ClampsBelowSmallestSample) {
  TrainingSetDB db;
  db.add({CommPattern::Shift, 4, 100.0, Stride::Unit, LatencyClass::High, 10.0});
  EXPECT_DOUBLE_EQ(db.lookup(CommPattern::Shift, 4, 1.0, Stride::Unit,
                             LatencyClass::High),
                   10.0);
}

TEST(TrainingSetDB, ExtrapolatesAboveLargestSample) {
  TrainingSetDB db;
  db.add({CommPattern::Shift, 4, 100.0, Stride::Unit, LatencyClass::High, 10.0});
  db.add({CommPattern::Shift, 4, 200.0, Stride::Unit, LatencyClass::High, 20.0});
  EXPECT_NEAR(db.lookup(CommPattern::Shift, 4, 400.0, Stride::Unit, LatencyClass::High),
              40.0, 1e-9);
}

TEST(TrainingSetDB, PicksNearestProcsInLogSpace) {
  TrainingSetDB db;
  db.add({CommPattern::Broadcast, 4, 64.0, Stride::Unit, LatencyClass::High, 11.0});
  db.add({CommPattern::Broadcast, 64, 64.0, Stride::Unit, LatencyClass::High, 77.0});
  EXPECT_DOUBLE_EQ(db.lookup(CommPattern::Broadcast, 8, 64.0, Stride::Unit,
                             LatencyClass::High),
                   11.0);
  EXPECT_DOUBLE_EQ(db.lookup(CommPattern::Broadcast, 48, 64.0, Stride::Unit,
                             LatencyClass::High),
                   77.0);
}

TEST(TrainingSetDB, FamiliesDoNotBleed) {
  TrainingSetDB db;
  db.add({CommPattern::Shift, 4, 64.0, Stride::Unit, LatencyClass::High, 1.0});
  db.add({CommPattern::Shift, 4, 64.0, Stride::NonUnit, LatencyClass::High, 2.0});
  db.add({CommPattern::Shift, 4, 64.0, Stride::Unit, LatencyClass::Low, 3.0});
  EXPECT_DOUBLE_EQ(
      db.lookup(CommPattern::Shift, 4, 64.0, Stride::Unit, LatencyClass::High), 1.0);
  EXPECT_DOUBLE_EQ(
      db.lookup(CommPattern::Shift, 4, 64.0, Stride::NonUnit, LatencyClass::High), 2.0);
  EXPECT_DOUBLE_EQ(
      db.lookup(CommPattern::Shift, 4, 64.0, Stride::Unit, LatencyClass::Low), 3.0);
}

TEST(TrainingSetDB, RejectsBadEntries) {
  TrainingSetDB db;
  EXPECT_THROW(db.add({CommPattern::Shift, 0, 1.0, Stride::Unit, LatencyClass::High, 1.0}),
               ContractViolation);
  EXPECT_THROW(
      db.add({CommPattern::Shift, 2, -1.0, Stride::Unit, LatencyClass::High, 1.0}),
      ContractViolation);
}

// ---------------------------------------------------------------------------
// The synthesized iPSC/860 and Paragon models.
// ---------------------------------------------------------------------------

class MachineModels : public ::testing::TestWithParam<const char*> {
protected:
  MachineModel model() const {
    return std::string(GetParam()) == "ipsc860" ? make_ipsc860() : make_paragon();
  }
};

TEST_P(MachineModels, HasOver100TrainingSets) {
  // The paper's prototype uses over 100 training sets.
  EXPECT_GT(model().training.size(), 100u);
}

TEST_P(MachineModels, MonotoneInMessageSize) {
  const MachineModel m = model();
  double prev = -1.0;
  for (double bytes : {64.0, 512.0, 4096.0, 32768.0}) {
    const double t =
        m.comm_us(CommPattern::SendRecv, 8, bytes, Stride::Unit, LatencyClass::High);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST_P(MachineModels, BufferingCostsExtra) {
  const MachineModel m = model();
  EXPECT_GT(m.comm_us(CommPattern::Shift, 8, 4096.0, Stride::NonUnit, LatencyClass::High),
            m.comm_us(CommPattern::Shift, 8, 4096.0, Stride::Unit, LatencyClass::High));
}

TEST_P(MachineModels, LowLatencyIsCheaper) {
  const MachineModel m = model();
  EXPECT_LT(m.comm_us(CommPattern::SendRecv, 8, 8.0, Stride::Unit, LatencyClass::Low),
            m.comm_us(CommPattern::SendRecv, 8, 8.0, Stride::Unit, LatencyClass::High));
}

TEST_P(MachineModels, BroadcastScalesWithLogProcs) {
  const MachineModel m = model();
  const double p2 =
      m.comm_us(CommPattern::Broadcast, 2, 1024.0, Stride::Unit, LatencyClass::High);
  const double p64 =
      m.comm_us(CommPattern::Broadcast, 64, 1024.0, Stride::Unit, LatencyClass::High);
  EXPECT_NEAR(p64 / p2, 6.0, 0.5);  // log2(64)/log2(2)
}

TEST_P(MachineModels, DoubleFlopsCostMoreThanReal) {
  const MachineModel m = model();
  EXPECT_GT(m.flop_us(fortran::ScalarType::DoublePrecision),
            m.flop_us(fortran::ScalarType::Real));
  EXPECT_GT(m.flop_us_real, 0.0);
  EXPECT_GT(m.mem_us, 0.0);
  EXPECT_GT(m.node_memory_bytes, 0);
}

INSTANTIATE_TEST_SUITE_P(Machines, MachineModels, ::testing::Values("ipsc860", "paragon"));

TEST(MachineModels, ParagonHasFasterLinksThanIpsc) {
  const MachineModel ipsc = make_ipsc860();
  const MachineModel paragon = make_paragon();
  const double big = 262144.0;
  EXPECT_LT(paragon.comm_us(CommPattern::SendRecv, 8, big, Stride::Unit,
                            LatencyClass::High),
            ipsc.comm_us(CommPattern::SendRecv, 8, big, Stride::Unit,
                         LatencyClass::High) / 5.0);
}

TEST(MachineModels, PatternNames) {
  EXPECT_STREQ(to_string(CommPattern::Shift), "shift");
  EXPECT_STREQ(to_string(CommPattern::Transpose), "transpose");
  EXPECT_STREQ(to_string(CommPattern::Reduction), "reduction");
}

} // namespace
} // namespace al::machine
