// Static performance report tests.
#include <gtest/gtest.h>

#include "corpus/corpus.hpp"
#include "driver/report.hpp"
#include "support/contracts.hpp"
#include "driver/tool.hpp"

namespace al::driver {
namespace {

std::unique_ptr<ToolResult> adi(int procs = 8) {
  ToolOptions opts;
  opts.procs = procs;
  return run_tool(corpus::adi_source(64, corpus::Dtype::DoublePrecision), opts);
}

TEST(Report, CoversEveryPhase) {
  auto r = adi();
  const std::string s = performance_report(*r);
  for (int p = 0; p < r->pcfg.num_phases(); ++p) {
    EXPECT_NE(s.find(r->pcfg.phase(p).label), std::string::npos) << p;
  }
  EXPECT_NE(s.find("estimated totals"), std::string::npos);
  EXPECT_NE(s.find("Intel iPSC/860"), std::string::npos);
}

TEST(Report, ShowsExecutionSchemes) {
  // Large Adi: the tool keeps the static row layout, whose x sweeps are
  // fine-grain pipelines.
  ToolOptions opts;
  opts.procs = 16;
  auto r = run_tool(corpus::adi_source(512, corpus::Dtype::DoublePrecision), opts);
  const std::string s = performance_report(*r);
  EXPECT_NE(s.find("fine-grain pipeline"), std::string::npos);
  EXPECT_NE(s.find("loosely-synchronous"), std::string::npos);
}

TEST(Report, PhaseReportListsMessages) {
  auto r = adi();
  // Phase 3 (x forward sweep) under the row layout has a recurrence event.
  int row_cand = 0;
  const auto& cands = r->spaces[3].candidates();
  for (std::size_t i = 0; i < cands.size(); ++i) {
    if (cands[i].layout.distribution().single_distributed_dim() == 0)
      row_cand = static_cast<int>(i);
  }
  const std::string s = phase_report(*r, 3, row_cand);
  EXPECT_NE(s.find("recurrence"), std::string::npos);
  EXPECT_NE(s.find("pipeline strip"), std::string::npos);
}

TEST(Report, RejectsBadCandidateIndex) {
  auto r = adi();
  EXPECT_THROW((void)phase_report(*r, 0, 99), ContractViolation);
}

TEST(Report, MarksUnpartitionedWork) {
  ToolOptions opts;
  opts.procs = 8;
  auto r = run_tool(
      "      parameter (n = 32)\n"
      "      real d(n,n), b(n,n)\n"
      "      do j = 1, n\n"
      "        do i = 1, n\n"
      "          d(i,1) = b(i,j)\n"
      "        enddo\n"
      "      enddo\n      end\n",
      opts);
  // Find a candidate distributing dim 2 (the write is fixed there).
  const auto& cands = r->spaces[0].candidates();
  for (std::size_t i = 0; i < cands.size(); ++i) {
    if (cands[i].layout.distribution().single_distributed_dim() == 1) {
      const std::string s = phase_report(*r, 0, static_cast<int>(i));
      EXPECT_NE(s.find("unpartitioned"), std::string::npos);
      return;
    }
  }
  FAIL() << "no dim-2 candidate found";
}

} // namespace
} // namespace al::driver
