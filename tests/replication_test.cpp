// Replication tests (paper 2.2.2: candidate distributions may "replicate
// dimensions on each processor"): layout semantics, remap classification
// and costs, compiler-model behaviour, candidate generation, end to end.
#include <gtest/gtest.h>

#include "compmodel/compile.hpp"
#include "corpus/corpus.hpp"
#include "driver/tool.hpp"
#include "fortran/parser.hpp"
#include "pcfg/pcfg.hpp"
#include "perf/remap.hpp"

namespace al {
namespace {

layout::Alignment replicated_alignment(int array, int rank) {
  layout::ArrayAlignment aa;
  aa.array = array;
  for (int k = 0; k < rank; ++k) aa.axis.push_back(k);
  aa.replicated = true;
  layout::Alignment out;
  out.set(std::move(aa));
  return out;
}

TEST(Replication, ReplicatedArrayHasNoDistributedDims) {
  layout::Layout l(replicated_alignment(7, 2), layout::Distribution::block_1d(2, 0, 8));
  EXPECT_FALSE(l.array_dim(7, 0).distributed());
  EXPECT_FALSE(l.array_dim(7, 1).distributed());
  EXPECT_EQ(l.distributed_array_dim(7, 2), -1);
  EXPECT_EQ(l.procs_for_array(7, 2), 1);
  // Other arrays still follow the distribution.
  EXPECT_TRUE(l.array_dim(8, 0).distributed());
}

TEST(Replication, RemapClassification) {
  const layout::Layout rep(replicated_alignment(0, 2),
                           layout::Distribution::block_1d(2, 0, 8));
  const layout::Layout dist(layout::Alignment{},
                            layout::Distribution::block_1d(2, 0, 8));
  EXPECT_EQ(layout::classify_remap(dist, rep, 0, 2), layout::RemapKind::Replicate);
  EXPECT_EQ(layout::classify_remap(rep, dist, 0, 2), layout::RemapKind::Dereplicate);
  EXPECT_EQ(layout::classify_remap(rep, rep, 0, 2), layout::RemapKind::None);
}

TEST(Replication, RemapCosts) {
  fortran::Program prog =
      fortran::parse_and_check("      real a(64,64)\n      end\n");
  const int a = prog.symbols.lookup("a");
  const machine::MachineModel m = machine::make_ipsc860();
  const layout::Layout rep(replicated_alignment(a, 2),
                           layout::Distribution::block_1d(2, 0, 8));
  const layout::Layout dist(layout::Alignment{},
                            layout::Distribution::block_1d(2, 0, 8));
  // Replication pays an allgather; dereplication is free.
  EXPECT_GT(perf::array_remap_us(dist, rep, a, prog.symbols, m), 0.0);
  EXPECT_DOUBLE_EQ(perf::array_remap_us(rep, dist, a, prog.symbols, m), 0.0);
}

TEST(Replication, ReadsOfReplicatedArraysAreFree) {
  fortran::Program prog = fortran::parse_and_check(
      "      parameter (n = 32)\n"
      "      real a(n,n), b(n,n)\n"
      "      do j = 1, n\n        do i = 1, n\n"
      "          a(i,j) = b(j,i)\n"  // transposed read: normally a transpose
      "        enddo\n      enddo\n      end\n");
  pcfg::Pcfg g = pcfg::Pcfg::build(prog);
  const pcfg::PhaseDeps deps = pcfg::analyze_dependences(g.phase(0), prog.symbols);
  const int b = prog.symbols.lookup("b");
  const layout::Layout l(replicated_alignment(b, 2),
                         layout::Distribution::block_1d(2, 0, 8));
  const auto compiled =
      compmodel::compile_phase(g.phase(0), deps, l, prog.symbols);
  EXPECT_TRUE(compiled.events.empty());
  EXPECT_DOUBLE_EQ(compiled.partitioned_fraction, 1.0);
}

TEST(Replication, WritesToReplicatedArraysRunEverywhere) {
  fortran::Program prog = fortran::parse_and_check(
      "      parameter (n = 32)\n"
      "      real a(n,n)\n"
      "      do j = 1, n\n        do i = 1, n\n"
      "          a(i,j) = 1.0\n"
      "        enddo\n      enddo\n      end\n");
  pcfg::Pcfg g = pcfg::Pcfg::build(prog);
  const pcfg::PhaseDeps deps = pcfg::analyze_dependences(g.phase(0), prog.symbols);
  const int a = prog.symbols.lookup("a");
  const layout::Layout l(replicated_alignment(a, 2),
                         layout::Distribution::block_1d(2, 0, 8));
  const auto compiled =
      compmodel::compile_phase(g.phase(0), deps, l, prog.symbols);
  // Unpartitioned: the full computation runs on every node.
  EXPECT_DOUBLE_EQ(compiled.partitioned_fraction, 0.0);
  EXPECT_DOUBLE_EQ(compiled.flops_real, 0.0);  // no flops in this statement
  EXPECT_GT(compiled.mem_accesses, 0.0);
}

TEST(Replication, CandidateGenerationDoublesTheSpace) {
  corpus::TestCase c{"erlebacher", 32, corpus::Dtype::DoublePrecision, 8};
  driver::ToolOptions plain;
  plain.procs = 8;
  driver::ToolOptions repl = plain;
  repl.replicate_unwritten = true;
  auto tp = driver::run_tool(corpus::source_for(c), plain);
  auto tr = driver::run_tool(corpus::source_for(c), repl);
  // Sweep phases read f without writing it: they gain replication variants.
  bool grew = false;
  for (int p = 0; p < tp->pcfg.num_phases(); ++p) {
    EXPECT_GE(tr->spaces[static_cast<std::size_t>(p)].size(),
              tp->spaces[static_cast<std::size_t>(p)].size());
    if (tr->spaces[static_cast<std::size_t>(p)].size() >
        tp->spaces[static_cast<std::size_t>(p)].size())
      grew = true;
  }
  EXPECT_TRUE(grew);
  // A superset search space can only improve the optimal selection.
  EXPECT_LE(tr->selection.total_cost_us, tp->selection.total_cost_us * (1.0 + 1e-9));
}

TEST(Replication, OversizedArraysAreNotReplicated) {
  // 512x512 double = 2 MB/array; set an artificial machine with tiny nodes.
  corpus::TestCase c{"erlebacher", 64, corpus::Dtype::DoublePrecision, 8};
  driver::ToolOptions opts;
  opts.procs = 8;
  opts.replicate_unwritten = true;
  opts.machine.node_memory_bytes = 1024;  // nothing fits
  auto tool = driver::run_tool(corpus::source_for(c), opts);
  for (const auto& space : tool->spaces) {
    for (const auto& cand : space.candidates()) {
      EXPECT_EQ(cand.label.find("+replicated"), std::string::npos);
    }
  }
}

} // namespace
} // namespace al
