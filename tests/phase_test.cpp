// Phase recognition and per-phase analysis tests (paper, section 2.1).
#include <gtest/gtest.h>

#include "fortran/parser.hpp"
#include "pcfg/pcfg.hpp"

namespace al::pcfg {
namespace {

using fortran::parse_and_check;
using fortran::Program;

TEST(PhaseRecognition, TimeLoopIsNotAPhaseRoot) {
  Program p = parse_and_check(
      "      parameter (n = 8)\n"
      "      real a(n)\n"
      "      do iter = 1, 10\n"
      "        do i = 1, n\n"
      "          a(i) = a(i) + 1.0\n"
      "        enddo\n"
      "      enddo\n"
      "      end\n");
  const auto& outer = static_cast<const fortran::DoStmt&>(*p.body[0]);
  EXPECT_FALSE(loop_is_phase_root(outer, p.symbols));
  const auto& inner = static_cast<const fortran::DoStmt&>(*outer.body[0]);
  EXPECT_TRUE(loop_is_phase_root(inner, p.symbols));
}

TEST(PhaseRecognition, IvUsedOnlyAsValueIsNotAPhase) {
  Program p = parse_and_check(
      "      parameter (n = 8)\n"
      "      real a(n)\n"
      "      do k = 1, 10\n"
      "        a(1) = a(1) + k\n"  // k as a VALUE, not a subscript
      "      enddo\n"
      "      end\n");
  const auto& loop = static_cast<const fortran::DoStmt&>(*p.body[0]);
  EXPECT_FALSE(loop_is_phase_root(loop, p.symbols));
}

TEST(PhaseRecognition, IvInsideSubscriptExpression) {
  Program p = parse_and_check(
      "      parameter (n = 8)\n"
      "      real a(n)\n"
      "      do k = 1, 4\n"
      "        a(2*k-1) = 0.0\n"
      "      enddo\n"
      "      end\n");
  const auto& loop = static_cast<const fortran::DoStmt&>(*p.body[0]);
  EXPECT_TRUE(loop_is_phase_root(loop, p.symbols));
}

TEST(PhaseAnalysis, LoopDescriptors) {
  Program p = parse_and_check(
      "      parameter (n = 16)\n"
      "      real a(n,n)\n"
      "      do j = 1, n\n"
      "        do i = 2, n, 2\n"
      "          a(i,j) = 0.0\n"
      "        enddo\n"
      "      enddo\n"
      "      end\n");
  const auto& root = static_cast<const fortran::DoStmt&>(*p.body[0]);
  const Phase ph = analyze_phase(root, p.symbols, 0, PhaseOptions{});
  ASSERT_EQ(ph.loops.size(), 2u);
  EXPECT_EQ(ph.loops[0].depth, 0);
  EXPECT_EQ(ph.loops[0].trip(), 16);
  EXPECT_EQ(ph.loops[1].depth, 1);
  EXPECT_EQ(ph.loops[1].lo, 2);
  EXPECT_EQ(ph.loops[1].step, 2);
  EXPECT_EQ(ph.loops[1].trip(), 8);
  EXPECT_TRUE(ph.loops[1].bounds_exact);
  EXPECT_NE(ph.loop_for_iv(ph.loops[1].iv_symbol), nullptr);
  EXPECT_EQ(ph.loop_for_iv(-123), nullptr);
}

TEST(PhaseAnalysis, NegativeStepTrip) {
  Program p = parse_and_check(
      "      parameter (n = 10)\n"
      "      real a(n)\n"
      "      do i = n-1, 1, -1\n"
      "        a(i) = a(i+1)\n"
      "      enddo\n"
      "      end\n");
  const auto& root = static_cast<const fortran::DoStmt&>(*p.body[0]);
  const Phase ph = analyze_phase(root, p.symbols, 0, PhaseOptions{});
  EXPECT_EQ(ph.loops[0].trip(), 9);
}

TEST(PhaseAnalysis, CollectsReadsAndWrites) {
  Program p = parse_and_check(
      "      parameter (n = 8)\n"
      "      real a(n,n), b(n,n)\n"
      "      do j = 1, n\n"
      "        do i = 1, n\n"
      "          a(i,j) = b(i,j) + b(i-1,j)\n"
      "        enddo\n"
      "      enddo\n"
      "      end\n");
  const auto& root = static_cast<const fortran::DoStmt&>(*p.body[0]);
  const Phase ph = analyze_phase(root, p.symbols, 0, PhaseOptions{});
  ASSERT_EQ(ph.refs.size(), 3u);
  int writes = 0;
  for (const Reference& r : ph.refs) {
    if (r.is_write) ++writes;
    EXPECT_EQ(r.enclosing_ivs.size(), 2u);
    EXPECT_DOUBLE_EQ(r.frequency, 64.0);
    EXPECT_EQ(r.stmt_id, ph.refs[0].stmt_id);  // one statement
  }
  EXPECT_EQ(writes, 1);
  ASSERT_EQ(ph.arrays.size(), 2u);
  EXPECT_TRUE(ph.references_array(p.symbols.lookup("a")));
  EXPECT_TRUE(ph.references_array(p.symbols.lookup("b")));
  EXPECT_FALSE(ph.references_array(999));
}

TEST(PhaseAnalysis, DistinctStatementsGetDistinctIds) {
  Program p = parse_and_check(
      "      parameter (n = 8)\n"
      "      real a(n), b(n)\n"
      "      do i = 1, n\n"
      "        a(i) = 1.0\n"
      "        b(i) = a(i)\n"
      "      enddo\n"
      "      end\n");
  const auto& root = static_cast<const fortran::DoStmt&>(*p.body[0]);
  const Phase ph = analyze_phase(root, p.symbols, 0, PhaseOptions{});
  ASSERT_EQ(ph.refs.size(), 3u);
  EXPECT_NE(ph.refs[0].stmt_id, ph.refs[1].stmt_id);
  EXPECT_EQ(ph.refs[1].stmt_id, ph.refs[2].stmt_id);
}

TEST(PhaseAnalysis, FlopAccountingByPrecision) {
  Program p = parse_and_check(
      "      parameter (n = 4)\n"
      "      real a(n)\n"
      "      double precision d(n)\n"
      "      do i = 1, n\n"
      "        a(i) = a(i) + 1.0\n"
      "        d(i) = d(i) * 2.0\n"
      "      enddo\n"
      "      end\n");
  const auto& root = static_cast<const fortran::DoStmt&>(*p.body[0]);
  const Phase ph = analyze_phase(root, p.symbols, 0, PhaseOptions{});
  EXPECT_DOUBLE_EQ(ph.flops_real, 4.0);    // one add per iteration
  EXPECT_DOUBLE_EQ(ph.flops_double, 4.0);  // one mul per iteration
  EXPECT_DOUBLE_EQ(ph.mem_accesses, 16.0); // four refs per iteration
}

TEST(PhaseAnalysis, DivisionCostsMoreThanAdd) {
  Program pa = parse_and_check(
      "      parameter (n = 4)\n      real a(n)\n"
      "      do i = 1, n\n        a(i) = a(i) + 2.0\n      enddo\n      end\n");
  Program pd = parse_and_check(
      "      parameter (n = 4)\n      real a(n)\n"
      "      do i = 1, n\n        a(i) = a(i) / 2.0\n      enddo\n      end\n");
  const Phase fa = analyze_phase(static_cast<const fortran::DoStmt&>(*pa.body[0]),
                                 pa.symbols, 0, PhaseOptions{});
  const Phase fd = analyze_phase(static_cast<const fortran::DoStmt&>(*pd.body[0]),
                                 pd.symbols, 0, PhaseOptions{});
  EXPECT_GT(fd.flops_real, fa.flops_real);
}

TEST(PhaseAnalysis, BranchProbabilityScalesFrequency) {
  const char* tmpl =
      "      parameter (n = 8)\n"
      "      real a(n), b(n)\n"
      "      do i = 1, n\n"
      "%s"
      "        if (b(i) .gt. 0.0) then\n"
      "          a(i) = 1.0\n"
      "        endif\n"
      "      enddo\n"
      "      end\n";
  char with_prob[512];
  std::snprintf(with_prob, sizeof with_prob, tmpl, "!al$ prob(0.25)\n");
  char without[512];
  std::snprintf(without, sizeof without, tmpl, "");

  auto freq_of_write = [](const Program& p, const PhaseOptions& opts) {
    const auto& root = static_cast<const fortran::DoStmt&>(*p.body[0]);
    const Phase ph = analyze_phase(root, p.symbols, 0, opts);
    for (const Reference& r : ph.refs) {
      if (r.is_write) return r.frequency;
    }
    return -1.0;
  };

  Program annotated = parse_and_check(with_prob);
  Program plain = parse_and_check(without);
  PhaseOptions use;
  EXPECT_DOUBLE_EQ(freq_of_write(annotated, use), 2.0);  // 8 * 0.25
  EXPECT_DOUBLE_EQ(freq_of_write(plain, use), 4.0);      // 8 * 0.5 guess
  PhaseOptions ignore;
  ignore.use_annotated_probabilities = false;
  EXPECT_DOUBLE_EQ(freq_of_write(annotated, ignore), 4.0);
}

} // namespace
} // namespace al::pcfg
