// Run-cache concurrency tests (DESIGN.md section 13), run under
// -DAL_SANITIZE=thread via the "tsan" ctest label: N simultaneous
// submissions of the SAME (source, options, machine) triple must cost
// exactly ONE pipeline compute -- the single-flight guarantee -- whether the
// callers race on run_tool_cached directly or arrive as identical service
// requests fanned across 8 workers.
#include <gtest/gtest.h>

#include <barrier>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "corpus/corpus.hpp"
#include "driver/run_cache.hpp"
#include "driver/tool.hpp"
#include "perf/run_cache.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "support/json.hpp"
#include "support/json_parse.hpp"
#include "support/metrics.hpp"

namespace al {
namespace {

using support::JsonValue;

std::string adi_source() {
  return corpus::source_for(
      corpus::TestCase{"adi", 24, corpus::Dtype::DoublePrecision, 4});
}

// Eight threads release from a barrier into run_tool_cached with one shared
// cache and identical inputs: exactly one runs the pipeline (the "tool.runs"
// counter moves by 1), the other seven are served the leader's bytes.
TEST(RunCacheConcurrency, EightRacingCallersOneCompute) {
  const std::string src = adi_source();
  driver::ToolOptions opts;
  opts.procs = 4;
  opts.threads = 1;
  perf::RunCache cache{perf::RunCacheConfig{}};

  support::Metrics& metrics = support::Metrics::instance();
  const std::uint64_t runs_before = metrics.counter("tool.runs").value();

  constexpr int kThreads = 8;
  std::vector<driver::CachedRunResult> results(kThreads);
  {
    std::barrier start(kThreads);
    std::vector<std::jthread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&, i] {
        start.arrive_and_wait();
        results[static_cast<std::size_t>(i)] =
            driver::run_tool_cached(src, opts, &cache);
      });
    }
  }

  EXPECT_EQ(metrics.counter("tool.runs").value() - runs_before, 1u)
      << "single-flight must collapse 8 identical submissions to 1 compute";

  int computed = 0;
  for (const driver::CachedRunResult& r : results) {
    EXPECT_TRUE(r.consulted);
    EXPECT_EQ(r.report_json, results[0].report_json)
        << "every caller must see the same bytes";
    EXPECT_FALSE(r.report_json.empty());
    if (r.result != nullptr) {
      ++computed;
      EXPECT_FALSE(r.hit);
    } else {
      EXPECT_TRUE(r.hit);
    }
  }
  EXPECT_EQ(computed, 1) << "exactly one caller should own the pipeline run";

  const perf::RunCacheStats stats = cache.stats();
  EXPECT_EQ(stats.fills, 1u);
  EXPECT_EQ(stats.hits, 7u);
  EXPECT_EQ(stats.entries, 1u);
}

// The same property through the serving layer: 8 identical requests, 8
// workers. The admission fast path and the worker-side consult may race
// freely; the invariant is one compute, 1 miss-shaped response, 7
// hit-shaped responses, and identical reports.
TEST(RunCacheConcurrency, BatchOfIdenticalRequestsSingleCompute) {
  const corpus::TestCase c{"adi", 24, corpus::Dtype::DoublePrecision, 4};
  std::ostringstream req;
  for (int i = 0; i < 8; ++i) {
    support::JsonWriter w(req, /*indent_width=*/-1);
    w.begin_object();
    w.kv("schema", service::kRequestSchema);
    w.kv("schema_version", service::kProtocolVersion);
    w.kv("id", "r" + std::to_string(i));
    w.kv("source", corpus::source_for(c));
    w.key("options").begin_object();
    w.kv("procs", c.procs);
    w.end_object();
    w.end_object();
  }

  support::Metrics& metrics = support::Metrics::instance();
  const std::uint64_t runs_before = metrics.counter("tool.runs").value();

  service::ServerOptions opts;
  opts.workers = 8;
  service::Server server(opts);
  std::istringstream in(req.str());
  std::ostringstream out;
  ASSERT_EQ(server.run_batch(in, out), 0);

  EXPECT_EQ(metrics.counter("tool.runs").value() - runs_before, 1u);

  std::set<std::string> ids;
  std::set<std::string> reports;
  int hits = 0;
  int misses = 0;
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(line, doc, error)) << error << "\n" << line;
    EXPECT_EQ(doc.find("status")->as_string(), "ok");
    ids.insert(std::string(doc.find("id")->as_string()));
    const std::string cache{doc.find("cache")->as_string()};
    if (cache == "hit") ++hits;
    if (cache == "miss") ++misses;
    // "report" is the last response field and hit responses splice the
    // cached bytes verbatim, so the raw substring comparison is exact.
    const std::string marker = "\"report\": ";
    const std::size_t at = line.find(marker);
    ASSERT_NE(at, std::string::npos);
    reports.insert(line.substr(at + marker.size(),
                               line.size() - (at + marker.size()) - 1));
  }
  EXPECT_EQ(ids.size(), 8u);
  EXPECT_EQ(misses, 1);
  EXPECT_EQ(hits, 7);
  EXPECT_EQ(reports.size(), 1u)
      << "hit responses must embed the same report as the computed one";

  const service::ServiceSummary summary = server.summary();
  EXPECT_EQ(summary.cache_hits, 7u);
  EXPECT_EQ(summary.cache_misses, 1u);
}

} // namespace
} // namespace al
