// JSON run-report tests: the document is well-formed JSON (checked by a
// tiny recursive-descent validator, not by eye), schema-versioned, carries
// the acceptance-critical sections (stage spans, estimator-cache counters,
// ILP solver counters, selected layouts), and stays well-formed for every
// corpus program. Also covers the JsonWriter primitive itself (escaping,
// nesting, non-finite doubles).
#include <gtest/gtest.h>

#include <cctype>
#include <limits>
#include <sstream>
#include <string>

#include "corpus/corpus.hpp"
#include "driver/json_report.hpp"
#include "driver/tool.hpp"
#include "support/json.hpp"
#include "support/trace.hpp"

namespace al::driver {
namespace {

/// Minimal JSON well-formedness checker (syntax only, no semantics).
class MiniJsonParser {
public:
  static bool valid(std::string_view s) {
    MiniJsonParser p(s);
    p.ws();
    if (!p.value()) return false;
    p.ws();
    return p.i_ == s.size();
  }

private:
  explicit MiniJsonParser(std::string_view s) : s_(s) {}

  [[nodiscard]] char peek() const { return i_ < s_.size() ? s_[i_] : '\0'; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++i_;
    return true;
  }
  void ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\n' ||
                              s_[i_] == '\r'))
      ++i_;
  }

  bool value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool literal(std::string_view word) {
    if (s_.substr(i_, word.size()) != word) return false;
    i_ += word.size();
    return true;
  }

  bool string() {
    if (!eat('"')) return false;
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\') {
        ++i_;
        if (i_ >= s_.size()) return false;
      }
      ++i_;
    }
    return eat('"');
  }

  bool number() {
    const std::size_t start = i_;
    if (peek() == '-') ++i_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++i_;
    if (peek() == '.') {
      ++i_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++i_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++i_;
      if (peek() == '+' || peek() == '-') ++i_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++i_;
    }
    return i_ > start;
  }

  bool object() {
    if (!eat('{')) return false;
    ws();
    if (eat('}')) return true;
    for (;;) {
      ws();
      if (!string()) return false;
      ws();
      if (!eat(':')) return false;
      ws();
      if (!value()) return false;
      ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }

  bool array() {
    if (!eat('[')) return false;
    ws();
    if (eat(']')) return true;
    for (;;) {
      ws();
      if (!value()) return false;
      ws();
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }

  std::string_view s_;
  std::size_t i_ = 0;
};

std::size_t count_occurrences(const std::string& hay, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size()))
    ++count;
  return count;
}

std::unique_ptr<ToolResult> run_small(const char* prog, long n, int procs) {
  corpus::TestCase c{prog, n,
                     std::string(prog) == "shallow" ? corpus::Dtype::Real
                                                    : corpus::Dtype::DoublePrecision,
                     procs};
  ToolOptions opts;
  opts.procs = procs;
  opts.threads = 1;
  return run_tool(corpus::source_for(c), opts);
}

TEST(JsonWriter, EscapesAndNests) {
  std::ostringstream os;
  support::JsonWriter w(os);
  w.begin_object();
  w.kv("quote\"back\\slash", "line\nbreak\ttab");
  w.key("list").begin_array();
  w.value(1).value(2.5).value(false).null();
  w.end_array();
  w.end_object();
  const std::string doc = os.str();
  EXPECT_TRUE(MiniJsonParser::valid(doc)) << doc;
  EXPECT_NE(doc.find("quote\\\"back\\\\slash"), std::string::npos);
  EXPECT_NE(doc.find("line\\nbreak\\ttab"), std::string::npos);
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  support::JsonWriter w(os);
  w.begin_object();
  w.kv("inf", std::numeric_limits<double>::infinity());
  w.kv("nan", std::numeric_limits<double>::quiet_NaN());
  w.end_object();
  const std::string doc = os.str();
  EXPECT_TRUE(MiniJsonParser::valid(doc)) << doc;
  EXPECT_EQ(count_occurrences(doc, "null"), 2u);
  EXPECT_EQ(doc.find("inf\": null") != std::string::npos, true);
}

TEST(JsonReport, SchemaAndRequiredSections) {
  auto r = run_small("adi", 32, 4);
  const std::string doc = json_report(*r);
  ASSERT_TRUE(MiniJsonParser::valid(doc)) << doc.substr(0, 400);
  EXPECT_NE(doc.find("\"schema\": \"autolayout.run\""), std::string::npos);
  EXPECT_NE(doc.find("\"schema_version\": 3"), std::string::npos);
  // Stage spans.
  for (const char* key :
       {"\"frontend_ms\"", "\"pcfg_ms\"", "\"alignment_ms\"", "\"spaces_ms\"",
        "\"estimation_ms\"", "\"selection_ms\"", "\"total_ms\""}) {
    EXPECT_NE(doc.find(key), std::string::npos) << key;
  }
  // Estimator-cache counters (+ shard occupancy).
  for (const char* key :
       {"\"estimate_hits\"", "\"remap_misses\"", "\"hit_rate\"", "\"occupancy\"",
        "\"max_shard_entries\""}) {
    EXPECT_NE(doc.find(key), std::string::npos) << key;
  }
  // ILP solver counters and the selection.
  for (const char* key : {"\"bb_nodes\"", "\"simplex_pivots\"", "\"variables\"",
                          "\"constraints\"", "\"chosen_layout\"", "\"dynamic\""}) {
    EXPECT_NE(doc.find(key), std::string::npos) << key;
  }
  // Metrics registry sections.
  EXPECT_NE(doc.find("\"counters\""), std::string::npos);
  EXPECT_NE(doc.find("\"gauges\""), std::string::npos);
  // v2: solver resilience data on the selection + alignment summary.
  for (const char* key :
       {"\"solver_status\"", "\"engine\"", "\"fallback\"", "\"budgets\"",
        "\"max_nodes\"", "\"deadline_ms\"", "\"verification\"",
        "\"alignment_ilp\"", "\"greedy_fallbacks\""}) {
    EXPECT_NE(doc.find(key), std::string::npos) << key;
  }
  // v3: the run-cache identity block. A plain run_tool never consulted a
  // cache, so the block says so and carries no key.
  EXPECT_NE(doc.find("\"run_cache\""), std::string::npos);
  EXPECT_NE(doc.find("\"consulted\": false"), std::string::npos);
}

// A starved node budget must still yield a well-formed v2 document that
// records the fallback provenance and a passing checker verdict.
TEST(JsonReport, FallbackProvenanceUnderNodeBudget) {
  corpus::TestCase c{"adi", 32, corpus::Dtype::DoublePrecision, 4};
  ToolOptions opts;
  opts.procs = 4;
  opts.threads = 1;
  opts.mip.max_nodes = 1;
  auto r = run_tool(corpus::source_for(c), opts);
  const std::string doc = json_report(*r);
  ASSERT_TRUE(MiniJsonParser::valid(doc)) << doc.substr(0, 400);
  EXPECT_NE(doc.find("\"max_nodes\": 1"), std::string::npos);
  EXPECT_NE(doc.find("\"verification\""), std::string::npos);
  EXPECT_TRUE(r->verification.ok) << r->verification.message;
  if (r->selection.is_fallback()) {
    EXPECT_NE(doc.find("\"fallback\": true"), std::string::npos);
    EXPECT_NE(doc.find(select::to_string(r->selection.engine)),
              std::string::npos);
  }
}

TEST(JsonReport, PhaseTableMatchesPipeline) {
  auto r = run_small("adi", 32, 4);
  const std::string doc = json_report(*r);
  EXPECT_EQ(count_occurrences(doc, "\"chosen_layout\""),
            static_cast<std::size_t>(r->pcfg.num_phases()));
  EXPECT_EQ(count_occurrences(doc, "\"candidates\""),
            static_cast<std::size_t>(r->pcfg.num_phases()));
  // Every phase's chosen layout string appears verbatim.
  for (int p = 0; p < r->pcfg.num_phases(); ++p) {
    EXPECT_NE(doc.find(support::JsonWriter::escape(
                  r->chosen_layout(p).str(r->program.symbols))),
              std::string::npos);
  }
}

// v3 stays v3: the oracle block is ADDITIVE. Without --validate it is a
// one-field stub; with it, the chosen/rivals/ranking sections appear and the
// document stays well-formed at the same schema version.
TEST(JsonReport, OracleBlockIsAdditive) {
  auto r0 = run_small("adi", 32, 4);
  const std::string d0 = json_report(*r0);
  EXPECT_NE(d0.find("\"oracle\""), std::string::npos);
  EXPECT_NE(d0.find("\"ran\": false"), std::string::npos);
  EXPECT_EQ(d0.find("\"chosen_inversions\""), std::string::npos);

  corpus::TestCase c{"adi", 32, corpus::Dtype::DoublePrecision, 4};
  ToolOptions opts;
  opts.procs = 4;
  opts.threads = 1;
  opts.validate = true;
  opts.validate_rivals = 3;
  auto r = run_tool(corpus::source_for(c), opts);
  EXPECT_TRUE(r->oracle.ran);
  EXPECT_TRUE(r->oracle.ok) << r->oracle.message;
  const std::string doc = json_report(*r);
  ASSERT_TRUE(MiniJsonParser::valid(doc)) << doc.substr(0, 400);
  EXPECT_NE(doc.find("\"schema_version\": 3"), std::string::npos);
  for (const char* key :
       {"\"oracle\"", "\"ran\": true", "\"simulated_us\"", "\"rivals\"",
        "\"ranking\"", "\"inversions\"", "\"chosen_inversions\"",
        "\"worst_rival_gap\"", "\"total_rel_error\"", "\"oracle_ms\""}) {
    EXPECT_NE(doc.find(key), std::string::npos) << key;
  }
}

TEST(JsonReport, WellFormedForWholeCorpus) {
  for (const char* prog : {"adi", "erlebacher", "tomcatv", "shallow"}) {
    auto r = run_small(prog, 24, 4);
    const std::string doc = json_report(*r);
    EXPECT_TRUE(MiniJsonParser::valid(doc)) << prog;
    EXPECT_NE(doc.find("\"program\""), std::string::npos) << prog;
  }
}

TEST(JsonReport, TraceSectionCarriesStageSpansWhenEnabled) {
  support::Tracer& tracer = support::Tracer::instance();
  tracer.set_enabled(true);
  tracer.reset();
  auto r = run_small("adi", 32, 4);
  const std::string doc = json_report(*r);
  tracer.set_enabled(false);
  tracer.reset();
  ASSERT_TRUE(MiniJsonParser::valid(doc));
  for (const char* span : {"stage.frontend", "stage.pcfg", "stage.estimation",
                           "stage.selection", "graph.nodes", "graph.edges",
                           "ilp.solve_mip", "tool.run"}) {
    EXPECT_NE(doc.find(span), std::string::npos) << span;
  }
}

TEST(JsonReport, TraceSectionEmptyWhenDisabled) {
  support::Tracer& tracer = support::Tracer::instance();
  tracer.set_enabled(false);
  tracer.reset();
  auto r = run_small("adi", 32, 4);
  const std::string doc = json_report(*r);
  EXPECT_NE(doc.find("\"enabled\": false"), std::string::npos);
  EXPECT_EQ(doc.find("stage.frontend"), std::string::npos);
}

} // namespace
} // namespace al::driver
