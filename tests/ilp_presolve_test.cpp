// 0-1 presolve unit tests (ilp/presolve.hpp): each reduction in isolation
// (fixing, singleton rows, forcing rows, redundancy, infeasibility proofs,
// coefficient tightening, probing) plus the postsolve round-trip property
// the MIP wrapper relies on: solving the REDUCED model and mapping back
// yields a feasible, equally-optimal solution of the ORIGINAL model.
#include <gtest/gtest.h>

#include <cmath>

#include "ilp/branch_and_bound.hpp"
#include "ilp/presolve.hpp"

namespace al::ilp {
namespace {

TEST(Presolve, FixedVariableIsEliminated) {
  Model m(Sense::Minimize);
  const int a = m.add_variable("a", 1.0, 1.0, 5.0, true);  // lo == up
  const int b = m.add_binary("b", 1.0);
  m.add_constraint("r", {{a, 1.0}, {b, 1.0}}, Rel::LE, 2.0);
  (void)a;

  const PresolveResult pre = presolve(m);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_GE(pre.stats.fixed_vars, 1);
  EXPECT_LT(pre.reduced.num_variables(), m.num_variables());
  ASSERT_TRUE(pre.fixed[0]);
  EXPECT_NEAR(pre.fixed_value[0], 1.0, 1e-9);

  // b survives (or was itself fixed); postsolve restores a = 1 regardless.
  std::vector<double> x_red(static_cast<std::size_t>(pre.reduced.num_variables()), 0.0);
  const std::vector<double> x = pre.postsolve(x_red);
  ASSERT_EQ(static_cast<int>(x.size()), m.num_variables());
  EXPECT_NEAR(x[0], 1.0, 1e-9);
  (void)b;
}

TEST(Presolve, SingletonRowRoundsBinaryBoundToZero) {
  // x <= 0.4 on a binary: integer bound rounding fixes x = 0 and drops the row.
  Model m(Sense::Minimize);
  m.add_binary("x", -1.0);
  m.add_constraint("cap", {{0, 1.0}}, Rel::LE, 0.4);

  const PresolveResult pre = presolve(m);
  ASSERT_FALSE(pre.infeasible);
  ASSERT_TRUE(pre.all_fixed());
  const std::vector<double> x = pre.postsolve({});
  EXPECT_NEAR(x[0], 0.0, 1e-9);
  EXPECT_GE(pre.stats.removed_rows, 1);
}

TEST(Presolve, ForcingRowFixesEveryTerm) {
  // x + y <= 0 over binaries: min activity equals the rhs, so both sit at 0.
  Model m(Sense::Minimize);
  m.add_binary("x", -3.0);
  m.add_binary("y", -2.0);
  m.add_constraint("zero", {{0, 1.0}, {1, 1.0}}, Rel::LE, 0.0);

  const PresolveResult pre = presolve(m);
  ASSERT_FALSE(pre.infeasible);
  ASSERT_TRUE(pre.all_fixed());
  const std::vector<double> x = pre.postsolve({});
  EXPECT_NEAR(x[0], 0.0, 1e-9);
  EXPECT_NEAR(x[1], 0.0, 1e-9);
}

TEST(Presolve, RedundantRowIsRemovedVariablesSurvive) {
  Model m(Sense::Minimize);
  m.add_binary("x", 1.0);
  m.add_binary("y", 1.0);
  m.add_constraint("loose", {{0, 1.0}, {1, 1.0}}, Rel::LE, 5.0);  // max activity 2
  m.add_constraint("tie", {{0, 1.0}, {1, 1.0}}, Rel::GE, 1.0);

  const PresolveResult pre = presolve(m);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_GE(pre.stats.removed_rows, 1);
  EXPECT_EQ(pre.reduced.num_variables(), 2);
  EXPECT_EQ(pre.reduced.num_constraints(), 1);
}

TEST(Presolve, ProvesInfeasibilityByActivityBounds) {
  // x + y >= 3 over two binaries: max activity 2 < 3.
  Model m(Sense::Minimize);
  m.add_binary("x", 0.0);
  m.add_binary("y", 0.0);
  m.add_constraint("impossible", {{0, 1.0}, {1, 1.0}}, Rel::GE, 3.0);

  const PresolveResult pre = presolve(m);
  EXPECT_TRUE(pre.infeasible);

  // And the solver wrapper reports it as a proven Infeasible.
  const MipResult r = solve_mip(m);
  EXPECT_EQ(r.status, SolveStatus::Infeasible);
}

TEST(Presolve, CoefficientTighteningPreservesOptimum) {
  // 2x + y <= 2 over binaries admits exactly the 0-1 points of x + y <= 1,
  // so Savelsbergh tightening may shift the coefficient and the rhs together
  // -- but only together; shrinking the coefficient alone would weaken the
  // row into x + y <= 2 and wrongly admit (1,1).
  Model m(Sense::Maximize);
  m.add_binary("x", 3.0);
  m.add_binary("y", 2.0);
  m.add_constraint("k", {{0, 2.0}, {1, 1.0}}, Rel::LE, 2.0);

  const PresolveResult pre = presolve(m);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_GE(pre.stats.tightened_coefs, 1);

  const MipResult fast = solve_mip(m);
  const MipResult oracle = solve_by_enumeration(m);
  ASSERT_EQ(fast.status, SolveStatus::Optimal);
  ASSERT_EQ(oracle.status, SolveStatus::Optimal);
  EXPECT_NEAR(fast.objective, oracle.objective, 1e-6);
  EXPECT_TRUE(m.is_feasible(fast.x));
}

TEST(Presolve, ProbingFixesContradictoryBinary) {
  // Exactly-one row x0 + x1 + x2 = 1; probing x0 = 1 zeroes its mates, which
  // makes x1 + x2 >= 1 unsatisfiable -- so x0 must be 0. Neither row fixes
  // anything on its own.
  Model m(Sense::Minimize);
  m.add_binary("x0", -3.0);  // tempting, but infeasible once probed
  m.add_binary("x1", 1.0);
  m.add_binary("x2", 2.0);
  m.add_constraint("sos", {{0, 1.0}, {1, 1.0}, {2, 1.0}}, Rel::EQ, 1.0);
  m.add_constraint("need", {{1, 1.0}, {2, 1.0}}, Rel::GE, 1.0);

  const PresolveResult pre = presolve(m);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_GE(pre.stats.probed_fixings, 1);
  ASSERT_TRUE(pre.fixed[0]);
  EXPECT_NEAR(pre.fixed_value[0], 0.0, 1e-9);

  const MipResult r = solve_mip(m);
  ASSERT_EQ(r.status, SolveStatus::Optimal);
  EXPECT_NEAR(r.objective, 1.0, 1e-6);  // x1 = 1 is the cheapest survivor
  EXPECT_NEAR(r.x[0], 0.0, 1e-9);
}

TEST(Presolve, PostsolveRoundTripMatchesDirectSolve) {
  // A small layout-selection-shaped model: two exactly-one phases plus
  // linking rows and a fixed variable thrown in. Solving the reduced model
  // and postsolving must equal solving the original directly.
  Model m(Sense::Minimize);
  const int a0 = m.add_binary("a0", 4.0);
  const int a1 = m.add_binary("a1", 7.0);
  const int b0 = m.add_binary("b0", 5.0);
  const int b1 = m.add_binary("b1", 1.0);
  const int pin = m.add_variable("pin", 1.0, 1.0, 2.0, true);
  m.add_constraint("phase_a", {{a0, 1.0}, {a1, 1.0}}, Rel::EQ, 1.0);
  m.add_constraint("phase_b", {{b0, 1.0}, {b1, 1.0}}, Rel::EQ, 1.0);
  // Remap penalty linkage: picking a0 with b1 costs extra unless pin pays.
  m.add_constraint("link", {{a0, 1.0}, {b1, 1.0}, {pin, -1.0}}, Rel::LE, 1.0);

  const PresolveResult pre = presolve(m);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_GE(pre.stats.fixed_vars, 1);  // at least `pin`

  MipOptions raw;
  raw.presolve = false;
  const MipResult direct = solve_mip(m, raw);
  ASSERT_EQ(direct.status, SolveStatus::Optimal);

  if (!pre.all_fixed()) {
    const MipResult red = solve_mip(pre.reduced, raw);
    ASSERT_EQ(red.status, SolveStatus::Optimal);
    const std::vector<double> x = pre.postsolve(red.x);
    ASSERT_TRUE(m.is_feasible(x));
    EXPECT_NEAR(m.objective_value(x), direct.objective, 1e-6);
  }

  // The production path (presolve on) agrees too.
  const MipResult prod = solve_mip(m);
  ASSERT_EQ(prod.status, SolveStatus::Optimal);
  EXPECT_NEAR(prod.objective, direct.objective, 1e-6);
  EXPECT_GE(prod.presolve_fixed_vars, 1);
}

TEST(Presolve, DoubletonSubstitutionAggregatesBinaryPair) {
  // x + z = 1 over binaries: z = 1 - x leaves the model entirely; the
  // objective folds onto x and the postsolve reconstructs z.
  Model m(Sense::Minimize);
  m.add_binary("x", 3.0);
  m.add_binary("z", 1.0);
  m.add_constraint("pair", {{0, 1.0}, {1, 1.0}}, Rel::EQ, 1.0);

  const PresolveResult pre = presolve(m);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_GE(pre.stats.substituted_vars, 1);
  ASSERT_TRUE(pre.all_fixed());  // x becomes an empty column and gets fixed
  const std::vector<double> x = pre.postsolve({});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0] + x[1], 1.0, 1e-9);
  EXPECT_NEAR(m.objective_value(x), 1.0, 1e-9);  // z = 1 is the cheap corner
}

TEST(Presolve, DoubletonSubstitutionRewritesLinkingRows) {
  // Two 2-candidate phases plus a linearized-product linking row -- the
  // selection model's exact shape. Substitution must rewrite the linking
  // row onto the kept variables without changing any answer.
  Model m(Sense::Minimize);
  const int x0 = m.add_binary("x0", 1.0);
  const int x1 = m.add_binary("x1", 2.0);
  const int z0 = m.add_binary("z0", 1.0);
  const int z1 = m.add_binary("z1", 3.0);
  const int y = m.add_binary("y", 5.0);
  m.add_constraint("phase_x", {{x0, 1.0}, {x1, 1.0}}, Rel::EQ, 1.0);
  m.add_constraint("phase_z", {{z0, 1.0}, {z1, 1.0}}, Rel::EQ, 1.0);
  m.add_constraint("link", {{x0, 1.0}, {z0, 1.0}, {y, -1.0}}, Rel::LE, 1.0);

  const PresolveResult pre = presolve(m);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_GE(pre.stats.substituted_vars, 2);

  const MipResult fast = solve_mip(m);
  const MipResult oracle = solve_by_enumeration(m);
  ASSERT_EQ(fast.status, SolveStatus::Optimal);
  ASSERT_EQ(oracle.status, SolveStatus::Optimal);
  EXPECT_NEAR(fast.objective, oracle.objective, 1e-6);
  ASSERT_TRUE(m.is_feasible(fast.x));
  EXPECT_GE(fast.presolve_fixed_vars, 2);  // substitutions count as eliminated
}

TEST(Presolve, EmptyModelAllFixed) {
  Model m(Sense::Minimize);
  const PresolveResult pre = presolve(m);
  EXPECT_FALSE(pre.infeasible);
  EXPECT_TRUE(pre.all_fixed());
  EXPECT_TRUE(pre.postsolve({}).empty());
}

} // namespace
} // namespace al::ilp
