// Training-set file format tests: parsing, error reporting, round-trip.
#include <gtest/gtest.h>

#include "machine/io.hpp"

namespace al::machine {
namespace {

TEST(TrainingIo, ParsesValidLines) {
  DiagnosticEngine diags;
  const TrainingSetDB db = parse_training_sets(
      "# pattern procs bytes stride latency micros\n"
      "shift 4 4096 unit high 1672.5\n"
      "sendrecv 2 8 unit low 30\n"
      "transpose 16 2.1e6 nonunit high 50000\n"
      "\n"
      "broadcast 8 1024 unit high 900\n",
      diags);
  EXPECT_FALSE(diags.has_errors()) << diags.str();
  ASSERT_EQ(db.size(), 4u);
  EXPECT_DOUBLE_EQ(
      db.lookup(CommPattern::Shift, 4, 4096.0, Stride::Unit, LatencyClass::High),
      1672.5);
  EXPECT_DOUBLE_EQ(
      db.lookup(CommPattern::Transpose, 16, 2.1e6, Stride::NonUnit, LatencyClass::High),
      50000.0);
}

TEST(TrainingIo, CaseInsensitiveTokens) {
  DiagnosticEngine diags;
  const TrainingSetDB db =
      parse_training_sets("SHIFT 4 100 Unit HIGH 12\n", diags);
  EXPECT_FALSE(diags.has_errors());
  EXPECT_EQ(db.size(), 1u);
}

TEST(TrainingIo, ReportsMalformedLinesButKeepsGoodOnes) {
  DiagnosticEngine diags;
  const TrainingSetDB db = parse_training_sets(
      "shift 4 4096 unit high 1672.5\n"
      "this is not a training line\n"
      "shift 8 4096 unit high 1800\n",
      diags);
  EXPECT_TRUE(diags.has_errors());
  EXPECT_EQ(db.size(), 2u);
}

TEST(TrainingIo, RejectsUnknownTokens) {
  for (const char* bad : {
           "warp 4 100 unit high 1\n",        // pattern
           "shift 4 100 diagonal high 1\n",   // stride
           "shift 4 100 unit medium 1\n",     // latency
           "shift 0 100 unit high 1\n",       // procs
           "shift 4 -5 unit high 1\n",        // bytes
       }) {
    DiagnosticEngine diags;
    const TrainingSetDB db = parse_training_sets(bad, diags);
    EXPECT_TRUE(diags.has_errors()) << bad;
    EXPECT_EQ(db.size(), 0u) << bad;
  }
}

TEST(TrainingIo, ErrorsCarryLineNumbers) {
  DiagnosticEngine diags;
  (void)parse_training_sets("shift 4 100 unit high 1\nbad line\n", diags);
  ASSERT_EQ(diags.error_count(), 1u);
  EXPECT_EQ(diags.all()[0].loc.line, 2u);
}

TEST(TrainingIo, RoundTrips) {
  const MachineModel m = make_ipsc860();
  const std::string text = format_training_sets(m.training);
  DiagnosticEngine diags;
  const TrainingSetDB back = parse_training_sets(text, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.str();
  ASSERT_EQ(back.size(), m.training.size());
  // Spot-check a few lookups survive the round trip.
  for (double bytes : {8.0, 4096.0, 262144.0}) {
    EXPECT_DOUBLE_EQ(
        back.lookup(CommPattern::SendRecv, 16, bytes, Stride::Unit, LatencyClass::High),
        m.training.lookup(CommPattern::SendRecv, 16, bytes, Stride::Unit,
                          LatencyClass::High));
  }
}

} // namespace
} // namespace al::machine
