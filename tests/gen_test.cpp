// The generative workload engine (src/gen, DESIGN.md section 14):
//   * every generated program round-trips the frontend (lex/parse/sema),
//   * generation is seed-deterministic and modulo-bias-free,
//   * the idiom library actually shows up in the emitted corpus,
//   * every invalidating mutation is rejected with STRUCTURED diagnostics
//     (never a crash, never silent acceptance) -- the negative path,
//   * the spec-level shrinker produces minimal reproducers.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "fortran/parser.hpp"
#include "fortran/sema.hpp"
#include "gen/differential.hpp"
#include "gen/generator.hpp"
#include "gen/mutate.hpp"
#include "gen/rng.hpp"
#include "pcfg/pcfg.hpp"

namespace al {
namespace {

// ---------------------------------------------------------------------------
// Round-trip: generated programs are valid frontend input by construction.

TEST(Generator, EveryProgramRoundTripsTheFrontend) {
  gen::Rng rng(2026);
  gen::GenOptions opts;
  for (int k = 0; k < 200; ++k) {
    const gen::ProgramSpec spec = gen::random_spec(rng, opts);
    ASSERT_TRUE(gen::spec_is_valid(spec));
    const std::string src = gen::emit_fortran(spec);
    SCOPED_TRACE("program:\n" + src);
    fortran::Program prog;
    ASSERT_NO_THROW(prog = fortran::parse_and_check(src));
    // One loop nest per phase spec: the phase splitter sees exactly the
    // structure the generator intended.
    const pcfg::Pcfg p = pcfg::Pcfg::build(prog, {});
    EXPECT_EQ(p.num_phases(), spec.num_phases());
  }
}

TEST(Generator, MultiRankProgramsRoundTrip) {
  gen::Rng rng(7);
  gen::GenOptions opts;
  opts.min_rank = 1;
  opts.max_rank = 3;
  opts.min_arrays = 3;
  opts.max_arrays = 5;
  std::set<int> ranks_seen;
  for (int k = 0; k < 60; ++k) {
    const gen::ProgramSpec spec = gen::random_spec(rng, opts);
    for (const gen::ArrayDecl& a : spec.arrays) ranks_seen.insert(a.rank);
    const std::string src = gen::emit_fortran(spec);
    SCOPED_TRACE("program:\n" + src);
    EXPECT_NO_THROW((void)fortran::parse_and_check(src));
  }
  // 1-D, 2-D and 3-D arrays all appear across the sample.
  EXPECT_EQ(ranks_seen, (std::set<int>{1, 2, 3}));
}

TEST(Generator, HundredPhaseProgramRoundTrips) {
  gen::Rng rng(13);
  gen::GenOptions opts;
  opts.min_phases = 100;
  opts.max_phases = 140;
  opts.max_arrays = 6;
  const gen::ProgramSpec spec = gen::random_spec(rng, opts);
  ASSERT_GE(spec.num_phases(), 100);
  const std::string src = gen::emit_fortran(spec);
  fortran::Program prog;
  ASSERT_NO_THROW(prog = fortran::parse_and_check(src));
  EXPECT_EQ(pcfg::Pcfg::build(prog, {}).num_phases(), spec.num_phases());
}

TEST(Generator, SeedDeterminism) {
  gen::GenOptions opts;
  gen::Rng a(99);
  gen::Rng b(99);
  for (int k = 0; k < 20; ++k)
    ASSERT_EQ(gen::random_program(a, opts), gen::random_program(b, opts));
  // Different seeds diverge (on the first draw, overwhelmingly likely).
  gen::Rng c(100);
  gen::Rng d(101);
  EXPECT_NE(gen::random_program(c, opts), gen::random_program(d, opts));
}

TEST(Generator, IdiomLibraryIsExercised) {
  gen::Rng rng(5);
  gen::GenOptions opts;
  opts.min_phases = 6;
  opts.max_phases = 12;
  std::set<gen::Idiom> seen;
  for (int k = 0; k < 100; ++k) {
    const gen::ProgramSpec spec = gen::random_spec(rng, opts);
    for (const gen::PhaseSpec& p : spec.phases) seen.insert(p.idiom);
  }
  EXPECT_TRUE(seen.count(gen::Idiom::Init));
  EXPECT_TRUE(seen.count(gen::Idiom::Pointwise));
  EXPECT_TRUE(seen.count(gen::Idiom::Stencil5));
  EXPECT_TRUE(seen.count(gen::Idiom::Stencil9));
  EXPECT_TRUE(seen.count(gen::Idiom::SweepForward));
  EXPECT_TRUE(seen.count(gen::Idiom::SweepBackward));
  EXPECT_TRUE(seen.count(gen::Idiom::Transpose));
  EXPECT_TRUE(seen.count(gen::Idiom::Reduction));
}

TEST(Generator, StructureKnobsAppear) {
  gen::Rng rng(17);
  gen::GenOptions opts;
  int with_time = 0;
  int with_branch = 0;
  for (int k = 0; k < 80; ++k) {
    const gen::ProgramSpec spec = gen::random_spec(rng, opts);
    if (spec.time_steps > 0) ++with_time;
    if (!spec.branches.empty()) ++with_branch;
  }
  EXPECT_GT(with_time, 0);
  EXPECT_GT(with_branch, 0);
}

TEST(Rng, UniformDrawsCoverTheRangeInclusively) {
  gen::Rng rng(1);
  std::set<int> seen;
  for (int k = 0; k < 400; ++k) seen.insert(rng.int_in(3, 7));
  EXPECT_EQ(seen, (std::set<int>{3, 4, 5, 6, 7}));
  for (int k = 0; k < 100; ++k) {
    const int v = rng.int_in(0, 0);
    ASSERT_EQ(v, 0);
  }
}

TEST(Spec, EmitRejectsInvalidSpecs) {
  gen::ProgramSpec spec;  // no arrays, no phases
  std::string why;
  EXPECT_FALSE(gen::spec_is_valid(spec, &why));
  EXPECT_FALSE(why.empty());
  EXPECT_THROW((void)gen::emit_fortran(spec), ContractViolation);

  gen::Rng rng(3);
  spec = gen::random_spec(rng, {});
  spec.phases[0].lhs = 99;  // out-of-range array index
  EXPECT_FALSE(gen::spec_is_valid(spec));
  EXPECT_THROW((void)gen::emit_fortran(spec), ContractViolation);
}

// ---------------------------------------------------------------------------
// Negative path: every mutation is rejected with structured diagnostics.

class MutationReject : public ::testing::TestWithParam<gen::MutationKind> {};

TEST_P(MutationReject, FrontendRejectsWithDiagnosticsNotCrashes) {
  gen::Rng rng(31);
  gen::GenOptions opts;
  for (int k = 0; k < 12; ++k) {
    const gen::ProgramSpec spec = gen::random_spec(rng, opts);
    const std::string broken = gen::mutate_invalid(spec, GetParam());
    SCOPED_TRACE(std::string("mutation: ") + gen::to_string(GetParam()) +
                 "\nprogram:\n" + broken);

    // The full frontend rejects it (FatalError carries the diagnostics)...
    EXPECT_THROW((void)fortran::parse_and_check(broken), FatalError);

    // ...and the underlying pieces report STRUCTURED diagnostics: parse and
    // analyze never crash, and at least one error lands in the engine.
    DiagnosticEngine diags;
    std::optional<fortran::Program> prog;
    ASSERT_NO_THROW(prog = fortran::parse_program(broken, diags));
    if (prog && !diags.has_errors()) {
      ASSERT_NO_THROW(fortran::analyze(*prog, diags));
    }
    EXPECT_TRUE(diags.has_errors());
    ASSERT_FALSE(diags.all().empty());
    for (const Diagnostic& d : diags.all()) EXPECT_FALSE(d.message.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, MutationReject,
    ::testing::ValuesIn(std::begin(gen::kAllMutations),
                        std::end(gen::kAllMutations)),
    [](const ::testing::TestParamInfo<gen::MutationKind>& info) {
      std::string name = gen::to_string(info.param);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// ---------------------------------------------------------------------------
// Shrinker: candidates are valid and strictly smaller; the greedy descent
// finds minimal reproducers against a synthetic oracle.

TEST(Shrinker, CandidatesAreValidAndSmaller) {
  gen::Rng rng(23);
  gen::GenOptions opts;
  opts.min_phases = 5;
  opts.max_phases = 9;
  for (int k = 0; k < 25; ++k) {
    const gen::ProgramSpec spec = gen::random_spec(rng, opts);
    for (const gen::ProgramSpec& cand : gen::shrink_candidates(spec)) {
      if (!gen::spec_is_valid(cand)) continue;  // the shrinker skips these too
      const bool smaller =
          cand.num_phases() < spec.num_phases() ||
          cand.arrays.size() < spec.arrays.size() ||
          cand.branches.size() < spec.branches.size() ||
          cand.time_steps < spec.time_steps || cand.n < spec.n;
      EXPECT_TRUE(smaller);
      // And still emittable.
      EXPECT_NO_THROW((void)gen::emit_fortran(cand));
    }
  }
}

TEST(Shrinker, FindsMinimalReproducerForSyntheticFailure) {
  // Oracle: "fails" iff the program still contains a transpose phase. The
  // minimal reproducer must be a single-phase transpose program.
  const gen::FailureOracle oracle = [](const gen::ProgramSpec& s) {
    gen::DiffResult r;
    for (const gen::PhaseSpec& p : s.phases) {
      if (p.idiom == gen::Idiom::Transpose) {
        r.ok = false;
        r.failure = "synthetic: transpose present";
      }
    }
    return r;
  };

  gen::Rng rng(41);
  gen::GenOptions opts;
  opts.min_phases = 6;
  opts.max_phases = 10;
  opts.min_rank = 2;  // keep transposes plentiful
  int shrunk = 0;
  for (int k = 0; k < 30 && shrunk < 5; ++k) {
    const gen::ProgramSpec spec = gen::random_spec(rng, opts);
    const auto outcome = gen::shrink_failure(spec, oracle);
    const bool has_transpose =
        std::any_of(spec.phases.begin(), spec.phases.end(), [](const auto& p) {
          return p.idiom == gen::Idiom::Transpose;
        });
    ASSERT_EQ(outcome.has_value(), has_transpose);
    if (!outcome) continue;
    ++shrunk;
    EXPECT_EQ(outcome->spec.num_phases(), 1);
    EXPECT_EQ(outcome->spec.phases[0].idiom, gen::Idiom::Transpose);
    EXPECT_TRUE(outcome->spec.branches.empty());
    EXPECT_EQ(outcome->spec.time_steps, 0);
    EXPECT_EQ(outcome->spec.n, 8);
    EXPECT_FALSE(outcome->failure.ok);
    EXPECT_GT(outcome->steps, 0);
  }
  EXPECT_GE(shrunk, 5) << "sample produced too few transpose programs";
}

TEST(Shrinker, ReturnsNulloptWhenNothingFails) {
  gen::Rng rng(47);
  const gen::ProgramSpec spec = gen::random_spec(rng, {});
  const auto outcome =
      gen::shrink_failure(spec, [](const gen::ProgramSpec&) { return gen::DiffResult{}; });
  EXPECT_FALSE(outcome.has_value());
}

} // namespace
} // namespace al
