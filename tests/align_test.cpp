// Alignment search-space machinery tests: lattice deduplication, phase
// class partitioning, the import operation, and the end-to-end heuristic
// on programs with and without conflicts (section 3.2).
#include <gtest/gtest.h>

#include "align/heuristic.hpp"
#include "corpus/corpus.hpp"
#include "fortran/parser.hpp"
#include "layout/template_map.hpp"

namespace al::align {
namespace {

using fortran::parse_and_check;
using fortran::Program;

struct Analysis {
  Program prog;
  pcfg::Pcfg pcfg;
  cag::NodeUniverse uni;
  layout::ProgramTemplate templ;
  AlignmentAnalysis result;

  explicit Analysis(const std::string& src)
      : prog(parse_and_check(src)),
        pcfg(pcfg::Pcfg::build(prog)),
        uni(cag::NodeUniverse::from_program(prog)),
        templ(layout::ProgramTemplate::from_program(prog)),
        result(analyze_alignment(prog, pcfg, uni, templ.rank)) {}
};

TEST(AlignmentSpace, DedupRejectsWeakerOrEqualInfo) {
  Program prog = parse_and_check("      real a(2,2), b(2,2)\n      end\n");
  cag::NodeUniverse uni = cag::NodeUniverse::from_program(prog);
  AlignmentSpace space;

  AlignmentCandidate strong;
  strong.info = cag::Partitioning(uni.size());
  strong.info.unite(0, 2);
  strong.info.unite(1, 3);
  EXPECT_TRUE(space.insert(strong));

  // Equal information: rejected.
  EXPECT_FALSE(space.insert(strong));

  // Strictly weaker information: rejected.
  AlignmentCandidate weak;
  weak.info = cag::Partitioning(uni.size());
  weak.info.unite(0, 2);
  EXPECT_FALSE(space.insert(weak));

  // Incomparable information: accepted.
  AlignmentCandidate other;
  other.info = cag::Partitioning(uni.size());
  other.info.unite(0, 3);
  EXPECT_TRUE(space.insert(other));
  EXPECT_EQ(space.size(), 2u);
}

TEST(AlignmentSpace, ForceInsertBypassesDedup) {
  AlignmentSpace space;
  AlignmentCandidate c;
  c.info = cag::Partitioning(4);
  space.force_insert(c);
  space.force_insert(c);
  EXPECT_EQ(space.size(), 2u);
}

TEST(RestrictInfo, DropsOtherArraysGroupings) {
  Program prog = parse_and_check("      real a(2,2), b(2,2), c(2,2)\n      end\n");
  cag::NodeUniverse uni = cag::NodeUniverse::from_program(prog);
  const int a = prog.symbols.lookup("a");
  const int b = prog.symbols.lookup("b");
  const int c = prog.symbols.lookup("c");
  cag::Partitioning p(uni.size());
  p.unite(uni.index(a, 0), uni.index(b, 0));
  p.unite(uni.index(b, 0), uni.index(c, 0));
  const cag::Partitioning r = restrict_info(p, uni, {a, b});
  EXPECT_TRUE(r.same(uni.index(a, 0), uni.index(b, 0)));
  EXPECT_FALSE(r.same(uni.index(a, 0), uni.index(c, 0)));
}

TEST(PhaseClasses, ConflictFreePhasesShareOneClass) {
  Analysis a(
      "      parameter (n = 8)\n"
      "      real x(n,n), y(n,n)\n"
      "      do j = 1, n\n        do i = 1, n\n"
      "          x(i,j) = y(i,j)\n"
      "        enddo\n      enddo\n"
      "      do j = 1, n\n        do i = 1, n\n"
      "          y(i,j) = x(i,j)\n"
      "        enddo\n      enddo\n"
      "      end\n");
  EXPECT_EQ(a.result.partition.classes.size(), 1u);
  EXPECT_EQ(a.result.partition.class_of, (std::vector<int>{0, 0}));
}

TEST(PhaseClasses, ConflictingPhasesSplit) {
  Analysis a(
      "      parameter (n = 8)\n"
      "      real x(n,n), y(n,n)\n"
      "      do j = 1, n\n        do i = 1, n\n"
      "          x(i,j) = y(i,j)\n"
      "        enddo\n      enddo\n"
      "      do j = 1, n\n        do i = 1, n\n"
      "          x(i,j) = y(j,i)\n"
      "        enddo\n      enddo\n"
      "      end\n");
  ASSERT_EQ(a.result.partition.classes.size(), 2u);
  EXPECT_NE(a.result.partition.class_of[0], a.result.partition.class_of[1]);
  // Each class's CAG is conflict-free by construction.
  for (const PhaseClass& cls : a.result.partition.classes) {
    EXPECT_FALSE(cls.cag.has_conflict());
  }
}

TEST(PhaseClasses, ClassArraysAreTheUnion) {
  Analysis a(
      "      parameter (n = 8)\n"
      "      real x(n,n), y(n,n), z(n,n)\n"
      "      do j = 1, n\n        do i = 1, n\n"
      "          x(i,j) = y(i,j)\n"
      "        enddo\n      enddo\n"
      "      do j = 1, n\n        do i = 1, n\n"
      "          z(i,j) = x(i,j)\n"
      "        enddo\n      enddo\n"
      "      end\n");
  ASSERT_EQ(a.result.partition.classes.size(), 1u);
  EXPECT_EQ(a.result.partition.classes[0].arrays.size(), 3u);
}

TEST(Import, CandidateCoversSinkArrays) {
  Analysis a(
      "      parameter (n = 8)\n"
      "      real x(n,n), y(n,n)\n"
      "      do j = 1, n\n        do i = 1, n\n"
      "          x(i,j) = y(i,j)\n"
      "        enddo\n      enddo\n"
      "      do j = 1, n\n        do i = 1, n\n"
      "          x(i,j) = y(j,i)\n"
      "        enddo\n      enddo\n"
      "      end\n");
  ASSERT_EQ(a.result.partition.classes.size(), 2u);
  const ImportResult imp = import_candidate(a.result.partition.classes[0],
                                            a.result.partition.classes[1], a.templ.rank);
  EXPECT_TRUE(imp.had_conflict);
  // The candidate must provide an alignment for both arrays of the sink.
  const int x = a.prog.symbols.lookup("x");
  const int y = a.prog.symbols.lookup("y");
  EXPECT_NE(imp.candidate.alignment.find(x), nullptr);
  EXPECT_NE(imp.candidate.alignment.find(y), nullptr);
}

TEST(Import, SourcePreferencesDominate) {
  // Source class aligns canonically (heavy); sink transposed (light). The
  // import into the sink must carry the SOURCE's canonical alignment.
  Analysis a(
      "      parameter (n = 32)\n"
      "      real x(n,n), y(n,n)\n"
      "      do j = 1, n\n        do i = 1, n\n"
      "          x(i,j) = y(i,j) + y(i,j)*2.0\n"
      "        enddo\n      enddo\n"
      "      do j = 1, n\n        do i = 1, n\n"
      "          x(i,j) = y(j,i)\n"
      "        enddo\n      enddo\n"
      "      end\n");
  ASSERT_EQ(a.result.partition.classes.size(), 2u);
  const ImportResult imp = import_candidate(a.result.partition.classes[0],
                                            a.result.partition.classes[1], a.templ.rank);
  const int x = a.prog.symbols.lookup("x");
  const int y = a.prog.symbols.lookup("y");
  // Canonical: x and y dims land on the same template dims.
  EXPECT_EQ(imp.candidate.alignment.axis_of(x, 0), imp.candidate.alignment.axis_of(y, 0));
  EXPECT_EQ(imp.candidate.alignment.axis_of(x, 1), imp.candidate.alignment.axis_of(y, 1));
}

TEST(Heuristic, PhaseSpacesAreNeverEmpty) {
  Analysis a(
      "      parameter (n = 8)\n"
      "      real x(n,n)\n"
      "      do j = 1, n\n        do i = 1, n\n"
      "          x(i,j) = x(i,j) + 1.0\n"
      "        enddo\n      enddo\n"
      "      end\n");
  ASSERT_EQ(a.result.phase_spaces.size(), 1u);
  EXPECT_GE(a.result.phase_spaces[0].size(), 1u);
}

TEST(Heuristic, ClassSpaceBoundedByClassCount) {
  // Paper: with p classes each class space has at most p candidates.
  corpus::TestCase c{"tomcatv", 64, corpus::Dtype::DoublePrecision, 4};
  Analysis a(corpus::source_for(c));
  const std::size_t p = a.result.partition.classes.size();
  EXPECT_EQ(p, 2u);
  for (const AlignmentSpace& s : a.result.class_spaces) {
    EXPECT_GE(s.size(), 1u);
    EXPECT_LE(s.size(), p);
  }
  // Tomcatv: the paper reports two entries per phase alignment space.
  for (const AlignmentSpace& s : a.result.phase_spaces) {
    EXPECT_GE(s.size(), 1u);
    EXPECT_LE(s.size(), 2u);
  }
}

TEST(Heuristic, ConflictFreeProgramNeedsNoIlp) {
  corpus::TestCase c{"adi", 64, corpus::Dtype::Real, 4};
  Analysis a(corpus::source_for(c));
  EXPECT_TRUE(a.result.ilp_resolutions.empty());
  EXPECT_EQ(a.result.partition.classes.size(), 1u);
}

TEST(Heuristic, TomcatvConflictsSolvedByIlp) {
  corpus::TestCase c{"tomcatv", 64, corpus::Dtype::DoublePrecision, 4};
  Analysis a(corpus::source_for(c));
  EXPECT_FALSE(a.result.ilp_resolutions.empty());
  for (const cag::Resolution& r : a.result.ilp_resolutions) {
    EXPECT_GT(r.ilp_variables, 0);
    EXPECT_GT(r.ilp_constraints, 0);
  }
}

} // namespace
} // namespace al::align
