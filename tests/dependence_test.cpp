// Dependence analysis tests: flow/anti distances (with loop step signs),
// reduction recognition, conservative fallbacks.
#include <gtest/gtest.h>

#include "fortran/parser.hpp"
#include "pcfg/dependence.hpp"
#include "pcfg/pcfg.hpp"

namespace al::pcfg {
namespace {

using fortran::parse_and_check;
using fortran::Program;

struct Analyzed {
  Program prog;
  Phase phase;
  PhaseDeps deps;

  explicit Analyzed(const std::string& body)
      : prog(parse_and_check(body)),
        phase(analyze_phase(static_cast<const fortran::DoStmt&>(*prog.body[0]),
                            prog.symbols, 0, PhaseOptions{})),
        deps(analyze_dependences(phase, prog.symbols)) {}

  int array(const char* name) const { return prog.symbols.lookup(name); }
};

TEST(Dependence, ForwardRecurrenceIsFlow) {
  Analyzed a(
      "      parameter (n = 8)\n      real x(n,n)\n"
      "      do j = 1, n\n        do i = 2, n\n"
      "          x(i,j) = x(i-1,j)\n"
      "        enddo\n      enddo\n      end\n");
  EXPECT_TRUE(a.deps.flow_on(a.array("x"), 0));
  EXPECT_FALSE(a.deps.flow_on(a.array("x"), 1));
  EXPECT_EQ(a.deps.flow_distance(a.array("x"), 0), 1);
}

TEST(Dependence, ForwardReadAheadIsAnti) {
  Analyzed a(
      "      parameter (n = 8)\n      real x(n,n)\n"
      "      do j = 1, n\n        do i = 1, n-1\n"
      "          x(i,j) = x(i+1,j)\n"
      "        enddo\n      enddo\n      end\n");
  EXPECT_FALSE(a.deps.flow_on(a.array("x"), 0));
  EXPECT_TRUE(a.deps.any_on(a.array("x"), 0));
}

TEST(Dependence, BackwardLoopFlipsTheSign) {
  // Descending loop reading x(i+1): that is the PREVIOUS iteration -> flow.
  Analyzed a(
      "      parameter (n = 8)\n      real x(n,n)\n"
      "      do j = 1, n\n        do i = n-1, 1, -1\n"
      "          x(i,j) = x(i+1,j)\n"
      "        enddo\n      enddo\n      end\n");
  EXPECT_TRUE(a.deps.flow_on(a.array("x"), 0));
}

TEST(Dependence, BackwardLoopAnti) {
  Analyzed a(
      "      parameter (n = 8)\n      real x(n,n)\n"
      "      do j = 1, n\n        do i = n, 2, -1\n"
      "          x(i,j) = x(i-1,j)\n"
      "        enddo\n      enddo\n      end\n");
  EXPECT_FALSE(a.deps.flow_on(a.array("x"), 0));
  EXPECT_TRUE(a.deps.any_on(a.array("x"), 0));
}

TEST(Dependence, SecondDimensionRecurrence) {
  Analyzed a(
      "      parameter (n = 8)\n      real x(n,n)\n"
      "      do j = 2, n\n        do i = 1, n\n"
      "          x(i,j) = x(i,j-1)\n"
      "        enddo\n      enddo\n      end\n");
  EXPECT_TRUE(a.deps.flow_on(a.array("x"), 1));
  EXPECT_FALSE(a.deps.flow_on(a.array("x"), 0));
}

TEST(Dependence, CrossStatementFlow) {
  Analyzed a(
      "      parameter (n = 8)\n      real x(n), y(n)\n"
      "      do i = 2, n\n"
      "        y(i) = 1.0\n"
      "        x(i) = y(i-1)\n"
      "      enddo\n      end\n");
  EXPECT_TRUE(a.deps.flow_on(a.array("y"), 0));
}

TEST(Dependence, IndependentArraysHaveNoDeps) {
  Analyzed a(
      "      parameter (n = 8)\n      real x(n), y(n)\n"
      "      do i = 1, n\n        x(i) = y(i)\n      enddo\n      end\n");
  EXPECT_TRUE(a.deps.deps.empty());
}

TEST(Dependence, LargerDistance) {
  Analyzed a(
      "      parameter (n = 16)\n      real x(n)\n"
      "      do i = 4, n\n        x(i) = x(i-3)\n      enddo\n      end\n");
  EXPECT_EQ(a.deps.flow_distance(a.array("x"), 0), 3);
}

TEST(Dependence, StrideTwoSkipsMismatchedParity) {
  // write x(2i), read x(2i-1): never the same element.
  Analyzed a(
      "      parameter (n = 16)\n      real x(n)\n"
      "      do i = 1, 8\n        x(2*i) = x(2*i-1)\n      enddo\n      end\n");
  EXPECT_FALSE(a.deps.any_on(a.array("x"), 0));
}

TEST(Dependence, StrideTwoMatchingParity) {
  // write x(2i), read x(2i-2): the previous iteration's element -> flow, 1.
  Analyzed a(
      "      parameter (n = 16)\n      real x(n)\n"
      "      do i = 2, 8\n        x(2*i) = x(2*i-2)\n      enddo\n      end\n");
  EXPECT_TRUE(a.deps.flow_on(a.array("x"), 0));
  EXPECT_EQ(a.deps.flow_distance(a.array("x"), 0), 1);
}

TEST(Dependence, ComplexSubscriptIsConservative) {
  Analyzed a(
      "      parameter (n = 8)\n      real x(n,n)\n"
      "      do j = 1, n\n        do i = 1, n\n"
      "          x(i,j) = x(j,i)\n"
      "        enddo\n      enddo\n      end\n");
  // Transposed coupling: unanalyzable pair, conservatively a dependence.
  EXPECT_TRUE(a.deps.any_on(a.array("x"), 0));
  EXPECT_TRUE(a.deps.flow_on(a.array("x"), 0));  // conservative flow
}

TEST(Dependence, SumReductionRecognized) {
  Analyzed a(
      "      parameter (n = 8)\n      real x(n)\n      real s\n"
      "      do i = 1, n\n        s = s + x(i)\n      enddo\n      end\n");
  ASSERT_EQ(a.deps.reductions.size(), 1u);
  EXPECT_EQ(a.deps.reductions[0].symbol, a.prog.symbols.lookup("s"));
  EXPECT_FALSE(a.deps.has_serializing_scalar);
}

TEST(Dependence, ProductReductionRecognized) {
  Analyzed a(
      "      parameter (n = 8)\n      real x(n)\n      real s\n"
      "      do i = 1, n\n        s = s * x(i)\n      enddo\n      end\n");
  ASSERT_EQ(a.deps.reductions.size(), 1u);
}

TEST(Dependence, MaxReductionRecognized) {
  Analyzed a(
      "      parameter (n = 8)\n      real x(n)\n      real s\n"
      "      do i = 1, n\n        s = max(s, abs(x(i)))\n      enddo\n      end\n");
  ASSERT_EQ(a.deps.reductions.size(), 1u);
}

TEST(Dependence, NonCommutativeScalarUpdateSerializes) {
  Analyzed a(
      "      parameter (n = 8)\n      real x(n)\n      real s\n"
      "      do i = 1, n\n        s = s / x(i)\n      enddo\n      end\n");
  EXPECT_TRUE(a.deps.reductions.empty());
  EXPECT_TRUE(a.deps.has_serializing_scalar);
}

TEST(Dependence, AccumulatorOnBothSidesIsNotAReduction) {
  Analyzed a(
      "      parameter (n = 8)\n      real x(n)\n      real s\n"
      "      do i = 1, n\n        s = s + s*x(i)\n      enddo\n      end\n");
  EXPECT_TRUE(a.deps.reductions.empty());
  EXPECT_TRUE(a.deps.has_serializing_scalar);
}

TEST(Dependence, PrivatizableScalarIsNeither) {
  Analyzed a(
      "      parameter (n = 8)\n      real x(n)\n      real t\n"
      "      do i = 1, n\n"
      "        t = x(i) * 2.0\n"
      "        x(i) = t\n"
      "      enddo\n      end\n");
  EXPECT_TRUE(a.deps.reductions.empty());
  EXPECT_FALSE(a.deps.has_serializing_scalar);
}

} // namespace
} // namespace al::pcfg
