// Distribution candidates, layout spaces (with the orientation/distribution
// symmetry collapse of section 3.2), layouts and remap classification.
#include <gtest/gtest.h>

#include "distrib/candidates.hpp"
#include "distrib/space.hpp"
#include "fortran/parser.hpp"

namespace al::distrib {
namespace {

using fortran::parse_and_check;
using fortran::Program;

TEST(Candidates, Exhaustive1DBlock) {
  DistributionOptions opts;
  opts.procs = 8;
  const auto dists = make_distribution_candidates(2, opts);
  ASSERT_EQ(dists.size(), 2u);
  EXPECT_EQ(dists[0].single_distributed_dim(), 0);
  EXPECT_EQ(dists[1].single_distributed_dim(), 1);
  EXPECT_EQ(dists[0].total_procs(), 8);
  EXPECT_EQ(dists[0].dim(0).kind, layout::DistKind::Block);
}

TEST(Candidates, SerialOptionAppends) {
  DistributionOptions opts;
  opts.procs = 4;
  opts.include_serial = true;
  const auto dists = make_distribution_candidates(3, opts);
  ASSERT_EQ(dists.size(), 4u);
  EXPECT_EQ(dists.back().num_distributed(), 0);
  EXPECT_EQ(dists.back().total_procs(), 1);
}

TEST(Candidates, ExtendedStrategyAddsCyclicAndMeshes) {
  DistributionOptions opts;
  opts.procs = 8;
  opts.strategy = Strategy::ExtendedExhaustive;
  const auto dists = make_distribution_candidates(2, opts);
  // 2 block + 2 cyclic + 2 block-cyclic + meshes {2x4, 4x2} on dims (0,1).
  int cyclic = 0;
  int meshes = 0;
  for (const auto& d : dists) {
    if (d.num_distributed() == 2) ++meshes;
    for (int k = 0; k < d.rank(); ++k) {
      if (d.dim(k).kind == layout::DistKind::Cyclic) ++cyclic;
    }
  }
  EXPECT_EQ(cyclic, 2);
  EXPECT_EQ(meshes, 2);  // 2x4 and 4x2
  for (const auto& d : dists) EXPECT_LE(d.total_procs(), 8);
}

TEST(Distribution, StrRendering) {
  EXPECT_EQ(layout::Distribution::block_1d(2, 0, 16).str(), "(BLOCK(16), *)");
  EXPECT_EQ(layout::Distribution::serial(2).str(), "(*, *)");
}

TEST(Layout, ArrayDimDistributionFollowsAlignment) {
  Program prog = parse_and_check("      real a(4,4)\n      end\n");
  const int a = prog.symbols.lookup("a");
  layout::Alignment align;
  align.set(layout::ArrayAlignment{a, {1, 0}});  // transposed
  layout::Layout l(align, layout::Distribution::block_1d(2, 0, 8));
  // Template dim 0 is distributed; the array dim mapped there is dim 1.
  EXPECT_FALSE(l.array_dim(a, 0).distributed());
  EXPECT_TRUE(l.array_dim(a, 1).distributed());
  EXPECT_EQ(l.distributed_array_dim(a, 2), 1);
  EXPECT_EQ(l.procs_for_array(a, 2), 8);
}

TEST(Layout, DefaultsToIdentityAlignment) {
  layout::Layout l(layout::Alignment{}, layout::Distribution::block_1d(2, 1, 4));
  EXPECT_TRUE(l.array_dim(/*array=*/7, 1).distributed());
  EXPECT_FALSE(l.array_dim(7, 0).distributed());
}

TEST(Layout, ClassifyRemap) {
  Program prog = parse_and_check("      real a(4,4)\n      end\n");
  const int a = prog.symbols.lookup("a");
  layout::Alignment canon;
  canon.set(layout::ArrayAlignment{a, {0, 1}});
  layout::Alignment transp;
  transp.set(layout::ArrayAlignment{a, {1, 0}});
  const layout::Layout row(canon, layout::Distribution::block_1d(2, 0, 8));
  const layout::Layout col(canon, layout::Distribution::block_1d(2, 1, 8));
  const layout::Layout trow(transp, layout::Distribution::block_1d(2, 0, 8));
  EXPECT_EQ(layout::classify_remap(row, row, a, 2), layout::RemapKind::None);
  EXPECT_EQ(layout::classify_remap(row, col, a, 2), layout::RemapKind::Redistribute);
  EXPECT_EQ(layout::classify_remap(row, trow, a, 2), layout::RemapKind::Realign);
}

TEST(LayoutSpace, OrientationDistributionSymmetryCollapses) {
  // Paper, end of 3.2: transposed orientation distributed by row equals the
  // canonical orientation distributed by column. The cross product of those
  // two alignments with the two 1-D distributions must collapse 4 -> 2...
  // here with ONE array both pairs coincide pairwise.
  Program prog = parse_and_check("      real a(4,4)\n      end\n");
  const int a = prog.symbols.lookup("a");

  align::AlignmentSpace aspace;
  align::AlignmentCandidate canon;
  canon.info = cag::Partitioning(2);
  canon.alignment.set(layout::ArrayAlignment{a, {0, 1}});
  canon.origin = "own";
  aspace.force_insert(canon);
  align::AlignmentCandidate transp;
  transp.info = cag::Partitioning(2);
  transp.alignment.set(layout::ArrayAlignment{a, {1, 0}});
  transp.origin = "import";
  aspace.force_insert(transp);

  DistributionOptions dopts;
  dopts.procs = 8;
  const auto dists = make_distribution_candidates(2, dopts);
  const LayoutSpace space = build_layout_space(aspace, dists, {a}, prog.symbols);
  EXPECT_EQ(space.size(), 2u);  // 2x2 cross product collapses to 2
}

TEST(LayoutSpace, DistinctEffectsAreKept) {
  // With two arrays aligned differently the cross product stays 4.
  Program prog = parse_and_check("      real a(4,4), b(4,4)\n      end\n");
  const int a = prog.symbols.lookup("a");
  const int b = prog.symbols.lookup("b");

  align::AlignmentSpace aspace;
  align::AlignmentCandidate both_canon;
  both_canon.info = cag::Partitioning(4);
  both_canon.alignment.set(layout::ArrayAlignment{a, {0, 1}});
  both_canon.alignment.set(layout::ArrayAlignment{b, {0, 1}});
  aspace.force_insert(both_canon);
  align::AlignmentCandidate b_transposed;
  b_transposed.info = cag::Partitioning(4);
  b_transposed.alignment.set(layout::ArrayAlignment{a, {0, 1}});
  b_transposed.alignment.set(layout::ArrayAlignment{b, {1, 0}});
  aspace.force_insert(b_transposed);

  DistributionOptions dopts;
  dopts.procs = 8;
  const auto dists = make_distribution_candidates(2, dopts);
  const LayoutSpace space = build_layout_space(aspace, dists, {a, b}, prog.symbols);
  EXPECT_EQ(space.size(), 4u);
}

TEST(LayoutCandidate, ParallelFlag) {
  LayoutCandidate c;
  c.layout = layout::Layout({}, layout::Distribution::serial(2));
  EXPECT_FALSE(c.parallel());
  c.layout = layout::Layout({}, layout::Distribution::block_1d(2, 0, 4));
  EXPECT_TRUE(c.parallel());
}

} // namespace
} // namespace al::distrib
