// Phase control flow graph tests: frequencies, transitions (including loop
// back edges and branches), reverse postorder.
#include <gtest/gtest.h>

#include <algorithm>

#include "fortran/parser.hpp"
#include "pcfg/pcfg.hpp"

namespace al::pcfg {
namespace {

using fortran::parse_and_check;

double transition_count(const Pcfg& g, int src, int dst) {
  for (const Transition& t : g.transitions()) {
    if (t.src == src && t.dst == dst) return t.traversals;
  }
  return 0.0;
}

TEST(Pcfg, StraightLinePhases) {
  Pcfg g = Pcfg::build(parse_and_check(
      "      parameter (n = 4)\n"
      "      real a(n), b(n)\n"
      "      do i = 1, n\n        a(i) = 0.0\n      enddo\n"
      "      do i = 1, n\n        b(i) = a(i)\n      enddo\n"
      "      end\n"));
  ASSERT_EQ(g.num_phases(), 2);
  EXPECT_DOUBLE_EQ(g.frequency(0), 1.0);
  EXPECT_DOUBLE_EQ(g.frequency(1), 1.0);
  EXPECT_DOUBLE_EQ(transition_count(g, -1, 0), 1.0);
  EXPECT_DOUBLE_EQ(transition_count(g, 0, 1), 1.0);
  EXPECT_DOUBLE_EQ(transition_count(g, 1, -1), 1.0);
}

TEST(Pcfg, TimeLoopMultipliesFrequencyAndAddsBackEdge) {
  Pcfg g = Pcfg::build(parse_and_check(
      "      parameter (n = 4)\n"
      "      real a(n), b(n)\n"
      "      do iter = 1, 10\n"
      "        do i = 1, n\n          a(i) = b(i)\n        enddo\n"
      "        do i = 1, n\n          b(i) = a(i)\n        enddo\n"
      "      enddo\n"
      "      end\n"));
  ASSERT_EQ(g.num_phases(), 2);
  EXPECT_DOUBLE_EQ(g.frequency(0), 10.0);
  EXPECT_DOUBLE_EQ(g.frequency(1), 10.0);
  EXPECT_DOUBLE_EQ(transition_count(g, 0, 1), 10.0);
  EXPECT_DOUBLE_EQ(transition_count(g, 1, 0), 9.0);  // back edge
  EXPECT_DOUBLE_EQ(transition_count(g, -1, 0), 1.0);
  EXPECT_DOUBLE_EQ(transition_count(g, 1, -1), 1.0);
}

TEST(Pcfg, BranchProbabilitySplitsTraversals) {
  Pcfg g = Pcfg::build(parse_and_check(
      "      parameter (n = 4)\n"
      "      real a(n), b(n)\n"
      "      do i = 1, n\n        a(i) = 0.0\n      enddo\n"
      "!al$ prob(0.25)\n"
      "      if (a(1) .gt. 0.0) then\n"
      "        do i = 1, n\n          b(i) = 1.0\n        enddo\n"
      "      else\n"
      "        do i = 1, n\n          b(i) = 2.0\n        enddo\n"
      "      endif\n"
      "      end\n"));
  ASSERT_EQ(g.num_phases(), 3);
  EXPECT_DOUBLE_EQ(g.frequency(1), 0.25);
  EXPECT_DOUBLE_EQ(g.frequency(2), 0.75);
  EXPECT_DOUBLE_EQ(transition_count(g, 0, 1), 0.25);
  EXPECT_DOUBLE_EQ(transition_count(g, 0, 2), 0.75);
  EXPECT_DOUBLE_EQ(transition_count(g, 1, -1), 0.25);
  EXPECT_DOUBLE_EQ(transition_count(g, 2, -1), 0.75);
}

TEST(Pcfg, IfWithOnlyThenPhases) {
  Pcfg g = Pcfg::build(parse_and_check(
      "      parameter (n = 4)\n"
      "      real a(n), b(n)\n"
      "      do i = 1, n\n        a(i) = 0.0\n      enddo\n"
      "      if (a(1) .gt. 0.0) then\n"
      "        do i = 1, n\n          b(i) = 1.0\n        enddo\n"
      "      endif\n"
      "      do i = 1, n\n        a(i) = b(i)\n      enddo\n"
      "      end\n"));
  ASSERT_EQ(g.num_phases(), 3);
  EXPECT_DOUBLE_EQ(g.frequency(1), 0.5);  // guessed probability
  // Control reaches phase 2 both through and around the branch.
  EXPECT_DOUBLE_EQ(transition_count(g, 0, 2), 0.5);
  EXPECT_DOUBLE_EQ(transition_count(g, 1, 2), 0.5);
  EXPECT_DOUBLE_EQ(g.frequency(2), 1.0);
}

TEST(Pcfg, NestedSequentialLoops) {
  Pcfg g = Pcfg::build(parse_and_check(
      "      parameter (n = 4)\n"
      "      real a(n)\n"
      "      do it = 1, 3\n"
      "        do jt = 1, 5\n"
      "          do i = 1, n\n            a(i) = a(i) + 1.0\n          enddo\n"
      "        enddo\n"
      "      enddo\n"
      "      end\n"));
  ASSERT_EQ(g.num_phases(), 1);
  EXPECT_DOUBLE_EQ(g.frequency(0), 15.0);
  EXPECT_DOUBLE_EQ(transition_count(g, 0, 0), 14.0);  // self back edge
}

TEST(Pcfg, ZeroTripLoopContributesNothing) {
  Pcfg g = Pcfg::build(parse_and_check(
      "      parameter (n = 4)\n"
      "      real a(n), b(n)\n"
      "      do i = 1, n\n        b(i) = 0.0\n      enddo\n"
      "      do iter = 5, 1\n"  // zero-trip
      "        do i = 1, n\n          a(i) = 1.0\n        enddo\n"
      "      enddo\n"
      "      end\n"));
  // The phase inside the dead loop is not reachable; only one phase with
  // frequency. (The phase node may exist but with zero frequency, or be
  // omitted entirely -- either way phase 0 dominates.)
  EXPECT_GE(g.num_phases(), 1);
  EXPECT_DOUBLE_EQ(g.frequency(0), 1.0);
}

TEST(Pcfg, ReversePostorderStartsAtEntry) {
  Pcfg g = Pcfg::build(parse_and_check(
      "      parameter (n = 4)\n"
      "      real a(n), b(n), c(n)\n"
      "      do i = 1, n\n        a(i) = 0.0\n      enddo\n"
      "      do i = 1, n\n        b(i) = a(i)\n      enddo\n"
      "      do i = 1, n\n        c(i) = b(i)\n      enddo\n"
      "      end\n"));
  const std::vector<int> order = g.reverse_postorder();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 2);
}

TEST(Pcfg, ReversePostorderCoversCyclicGraph) {
  Pcfg g = Pcfg::build(parse_and_check(
      "      parameter (n = 4)\n"
      "      real a(n), b(n)\n"
      "      do iter = 1, 3\n"
      "        do i = 1, n\n          a(i) = b(i)\n        enddo\n"
      "        do i = 1, n\n          b(i) = a(i)\n        enddo\n"
      "      enddo\n"
      "      end\n"));
  const std::vector<int> order = g.reverse_postorder();
  ASSERT_EQ(order.size(), 2u);
  std::vector<int> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1}));
}

TEST(Pcfg, StrIsInformative) {
  Pcfg g = Pcfg::build(parse_and_check(
      "      parameter (n = 4)\n"
      "      real a(n)\n"
      "      do i = 1, n\n        a(i) = 0.0\n      enddo\n"
      "      end\n"));
  const std::string s = g.str();
  EXPECT_NE(s.find("1 phases"), std::string::npos);
  EXPECT_NE(s.find("entry"), std::string::npos);
  EXPECT_NE(s.find("exit"), std::string::npos);
}

} // namespace
} // namespace al::pcfg
