// Affine subscript analysis tests.
#include <gtest/gtest.h>

#include "fortran/parser.hpp"
#include "pcfg/subscripts.hpp"

namespace al::pcfg {
namespace {

using fortran::Program;

struct Fixture {
  Program prog;
  int iv_i;
  int iv_j;

  Fixture()
      : prog(fortran::parse_and_check(
            "      program subs\n"
            "      parameter (n = 100)\n"
            "      real a(n,n)\n"
            "      integer i, j, m\n"
            "      end\n")) {
    iv_i = prog.symbols.lookup("i");
    iv_j = prog.symbols.lookup("j");
  }

  /// Parses `text` as the first subscript of a(<text>, 1) and analyzes it.
  SubscriptInfo analyze(const std::string& text) {
    Program p = fortran::parse_and_check(
        "      program one\n"
        "      parameter (n = 100)\n"
        "      real a(n,n)\n"
        "      integer i, j, m\n"
        "      x = a(" + text + ", 1)\n"
        "      end\n");
    const auto& assign = static_cast<const fortran::AssignStmt&>(*p.body[0]);
    const auto& ref = static_cast<const fortran::ArrayRefExpr&>(*assign.rhs);
    // IVs by symbol index in the fresh program.
    std::vector<int> ivs = {p.symbols.lookup("i"), p.symbols.lookup("j")};
    return analyze_subscript(*ref.subscripts[0], p.symbols, ivs);
  }
};

TEST(Subscripts, PlainIv) {
  Fixture f;
  const SubscriptInfo s = f.analyze("i");
  EXPECT_EQ(s.form, SubscriptForm::Affine);
  EXPECT_EQ(s.coef, 1);
  EXPECT_EQ(s.offset, 0);
  EXPECT_TRUE(s.offset_exact);
}

TEST(Subscripts, OffsetForms) {
  Fixture f;
  EXPECT_EQ(f.analyze("i+1").offset, 1);
  EXPECT_EQ(f.analyze("i-3").offset, -3);
  EXPECT_EQ(f.analyze("1+i").offset, 1);
}

TEST(Subscripts, ScaledIv) {
  Fixture f;
  const SubscriptInfo s = f.analyze("2*i - 1");
  EXPECT_EQ(s.form, SubscriptForm::Affine);
  EXPECT_EQ(s.coef, 2);
  EXPECT_EQ(s.offset, -1);
}

TEST(Subscripts, NegatedIv) {
  Fixture f;
  const SubscriptInfo s = f.analyze("n - i");
  EXPECT_EQ(s.form, SubscriptForm::Affine);
  EXPECT_EQ(s.coef, -1);
  EXPECT_EQ(s.offset, 100);  // n folds to its PARAMETER value
  EXPECT_TRUE(s.offset_exact);
}

TEST(Subscripts, ConstantIsInvariant) {
  Fixture f;
  const SubscriptInfo s = f.analyze("5");
  EXPECT_EQ(s.form, SubscriptForm::Invariant);
  EXPECT_EQ(s.offset, 5);
  EXPECT_TRUE(s.offset_exact);
}

TEST(Subscripts, ParameterIsInvariant) {
  Fixture f;
  const SubscriptInfo s = f.analyze("n");
  EXPECT_EQ(s.form, SubscriptForm::Invariant);
  EXPECT_EQ(s.offset, 100);
}

TEST(Subscripts, NonIvScalarIsInvariantButInexact) {
  Fixture f;
  const SubscriptInfo s = f.analyze("m");
  EXPECT_EQ(s.form, SubscriptForm::Invariant);
  EXPECT_FALSE(s.offset_exact);
}

TEST(Subscripts, IvPlusSymbolicIsAffineInexact) {
  Fixture f;
  const SubscriptInfo s = f.analyze("i + m");
  EXPECT_EQ(s.form, SubscriptForm::Affine);
  EXPECT_EQ(s.coef, 1);
  EXPECT_FALSE(s.offset_exact);
}

TEST(Subscripts, CoupledIvsAreComplex) {
  Fixture f;
  EXPECT_EQ(f.analyze("i + j").form, SubscriptForm::Complex);
  EXPECT_EQ(f.analyze("i - j").form, SubscriptForm::Complex);
}

TEST(Subscripts, IvCancellation) {
  Fixture f;
  // i + j - j is affine in i alone.
  const SubscriptInfo s = f.analyze("i + j - j");
  EXPECT_EQ(s.form, SubscriptForm::Affine);
  EXPECT_EQ(s.coef, 1);
}

TEST(Subscripts, NonlinearIsComplex) {
  Fixture f;
  EXPECT_EQ(f.analyze("i*i").form, SubscriptForm::Complex);
  EXPECT_EQ(f.analyze("i*j").form, SubscriptForm::Complex);
}

TEST(Subscripts, DivisionRules) {
  Fixture f;
  // Exact constant division folds; anything else is Complex.
  EXPECT_EQ(f.analyze("n/2").form, SubscriptForm::Invariant);
  EXPECT_EQ(f.analyze("n/2").offset, 50);
  EXPECT_EQ(f.analyze("i/2").form, SubscriptForm::Complex);
  EXPECT_EQ(f.analyze("n/3").form, SubscriptForm::Complex);  // inexact
}

TEST(Subscripts, ConstantTimesParenthesizedIv) {
  Fixture f;
  const SubscriptInfo s = f.analyze("2*(i+1)");
  EXPECT_EQ(s.form, SubscriptForm::Affine);
  EXPECT_EQ(s.coef, 2);
  EXPECT_EQ(s.offset, 2);
}

TEST(Subscripts, ArrayRefInsideSubscriptIsComplex) {
  Fixture f;
  EXPECT_EQ(f.analyze("a(i,1)").form, SubscriptForm::Complex);
}

TEST(Subscripts, AffineInHelper) {
  Fixture f;
  const SubscriptInfo s = f.analyze("i+1");
  // iv symbols differ per program instance; check via the form:
  EXPECT_TRUE(s.affine_in(s.iv_symbol));
  EXPECT_FALSE(s.affine_in(s.iv_symbol + 999));
}

} // namespace
} // namespace al::pcfg
