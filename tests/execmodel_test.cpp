// Execution model tests: phase shape classification and estimate structure.
#include <gtest/gtest.h>

#include "execmodel/estimate.hpp"
#include "fortran/parser.hpp"
#include "pcfg/pcfg.hpp"

namespace al::execmodel {
namespace {

using fortran::parse_and_check;
using fortran::Program;

struct Estimated {
  Program prog;
  pcfg::Pcfg pcfg;
  pcfg::PhaseDeps deps;
  machine::MachineModel mach = machine::make_ipsc860();
  compmodel::CompiledPhase compiled;
  PhaseEstimate est;

  Estimated(const std::string& src, int dist_dim, int procs)
      : prog(parse_and_check(src)),
        pcfg(pcfg::Pcfg::build(prog)),
        deps(pcfg::analyze_dependences(pcfg.phase(0), prog.symbols)),
        compiled(compmodel::compile_phase(
            pcfg.phase(0), deps,
            layout::Layout({}, dist_dim < 0
                                   ? layout::Distribution::serial(2)
                                   : layout::Distribution::block_1d(2, dist_dim, procs)),
            prog.symbols)),
        est(estimate_phase(compiled, deps, mach)) {}
};

const char* kParallel =
    "      parameter (n = 64)\n"
    "      real a(n,n), b(n,n)\n"
    "      do j = 1, n\n        do i = 1, n\n"
    "          a(i,j) = b(i,j) * 2.0\n"
    "        enddo\n      enddo\n      end\n";

const char* kInnerRecurrence =
    "      parameter (n = 64)\n"
    "      real x(n,n)\n"
    "      do j = 1, n\n        do i = 2, n\n"
    "          x(i,j) = x(i-1,j) * 0.5\n"
    "        enddo\n      enddo\n      end\n";

const char* kOuterRecurrence =
    "      parameter (n = 64)\n"
    "      real x(n,n)\n"
    "      do j = 2, n\n        do i = 1, n\n"
    "          x(i,j) = x(i,j-1) * 0.5\n"
    "        enddo\n      enddo\n      end\n";

const char* kReduction =
    "      parameter (n = 64)\n"
    "      real a(n,n)\n"
    "      real s\n"
    "      do j = 1, n\n        do i = 1, n\n"
    "          s = s + a(i,j)\n"
    "        enddo\n      enddo\n      end\n";

TEST(ExecModel, SerialWhenNotDistributed) {
  Estimated e(kParallel, /*dist_dim=*/-1, 1);
  EXPECT_EQ(e.est.shape, PhaseShape::Serial);
  EXPECT_DOUBLE_EQ(e.est.comm_us, 0.0);
  EXPECT_GT(e.est.comp_us, 0.0);
}

TEST(ExecModel, LooselySynchronousParallelLoop) {
  Estimated e(kParallel, 0, 8);
  EXPECT_EQ(e.est.shape, PhaseShape::LooselySynchronous);
  EXPECT_DOUBLE_EQ(e.est.comm_us, 0.0);  // perfectly aligned
}

TEST(ExecModel, FinePipelineOnInnerRecurrence) {
  Estimated e(kInnerRecurrence, 0, 8);
  EXPECT_EQ(e.est.shape, PhaseShape::FinePipeline);
  EXPECT_GT(e.est.comm_us, 0.0);
}

TEST(ExecModel, SequentializedOnOuterRecurrence) {
  Estimated e(kOuterRecurrence, 1, 8);
  EXPECT_EQ(e.est.shape, PhaseShape::Sequentialized);
  // The chain costs roughly (P-1) extra copies of the computation.
  EXPECT_GT(e.est.comm_us, e.est.comp_us * 6.0);
}

TEST(ExecModel, CoarsePipelineOnThreeDeep) {
  // 3-D middle-loop recurrence: strips = outer trip, block-sized messages
  // (needs a rank-3 template, so this test builds its pieces directly).
  Program prog = parse_and_check(
      "      parameter (n = 48)\n"
      "      real x(n,n,n)\n"
      "      do k = 1, n\n        do j = 2, n\n          do i = 1, n\n"
      "            x(i,j,k) = x(i,j-1,k)\n"
      "          enddo\n        enddo\n      enddo\n      end\n");
  pcfg::Pcfg g = pcfg::Pcfg::build(prog);
  pcfg::PhaseDeps deps = pcfg::analyze_dependences(g.phase(0), prog.symbols);
  const auto compiled = compmodel::compile_phase(
      g.phase(0), deps, layout::Layout({}, layout::Distribution::block_1d(3, 1, 8)),
      prog.symbols);
  const machine::MachineModel mach = machine::make_ipsc860();
  const PhaseEstimate est = estimate_phase(compiled, deps, mach);
  EXPECT_EQ(est.shape, PhaseShape::CoarsePipeline);
}

TEST(ExecModel, ReductionShape) {
  Estimated e(kReduction, 0, 8);
  EXPECT_EQ(e.est.shape, PhaseShape::Reduction);
  EXPECT_GT(e.est.comm_us, 0.0);  // the combining tree
}

TEST(ExecModel, CompScalesDownWithProcs) {
  Estimated e2(kParallel, 0, 2);
  Estimated e16(kParallel, 0, 16);
  EXPECT_NEAR(e2.est.comp_us / e16.est.comp_us, 8.0, 1e-6);
}

TEST(ExecModel, SequentializedBeatsNothing) {
  // The sequential chain must cost at least P times one block.
  Estimated e(kOuterRecurrence, 1, 8);
  Estimated serial(kOuterRecurrence, -1, 1);
  EXPECT_GT(e.est.total_us(), serial.est.total_us() * 0.9);
}

TEST(ExecModel, FinePipelineWorseThanFreeRide) {
  // The same phase under the orthogonal distribution has no recurrence and
  // must be cheaper.
  Estimated pipe(kInnerRecurrence, 0, 8);
  Estimated free(kInnerRecurrence, 1, 8);
  EXPECT_EQ(free.est.shape, PhaseShape::LooselySynchronous);
  EXPECT_LT(free.est.total_us(), pipe.est.total_us());
}

TEST(ExecModel, ShapeNames) {
  EXPECT_STREQ(to_string(PhaseShape::FinePipeline), "fine-grain pipeline");
  EXPECT_STREQ(to_string(PhaseShape::Sequentialized), "sequentialized");
  EXPECT_STREQ(to_string(PhaseShape::LooselySynchronous), "loosely-synchronous");
}

} // namespace
} // namespace al::execmodel
