// Protocol-layer tests (DESIGN.md section 11): the JSON reader primitive
// (strictness, escapes, depth bound, number lexemes), request validation
// (malformed JSON, unknown schema/version/keys, missing source, oversized
// lines, integer fields held to the CLI's whole-lexeme parse), and the
// response builders (single-line framing, well-formedness, and the
// budget-exceeded request surviving with fallback provenance -- PR 3's
// --mip-nodes 1 pattern, now over the wire).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "corpus/corpus.hpp"
#include "driver/tool.hpp"
#include "service/protocol.hpp"
#include "support/contracts.hpp"
#include "support/json.hpp"
#include "support/json_parse.hpp"
#include "support/metrics.hpp"

namespace al::service {
namespace {

using support::JsonValue;

JsonValue parse_ok(const std::string& text) {
  JsonValue v;
  std::string error;
  EXPECT_TRUE(JsonValue::parse(text, v, error)) << error;
  return v;
}

std::string parse_fail(const std::string& text) {
  JsonValue v;
  std::string error;
  EXPECT_FALSE(JsonValue::parse(text, v, error)) << text;
  return error;
}

// ---------------------------------------------------------------------------
// JsonValue (the reader primitive)
// ---------------------------------------------------------------------------

TEST(JsonParse, ScalarsAndContainers) {
  EXPECT_TRUE(parse_ok("null").is_null());
  EXPECT_TRUE(parse_ok("true").as_bool());
  EXPECT_FALSE(parse_ok("false").as_bool());
  EXPECT_EQ(parse_ok("\"hi\"").as_string(), "hi");
  EXPECT_EQ(parse_ok("-12.5e2").number_lexeme(), "-12.5e2");
  EXPECT_DOUBLE_EQ(parse_ok("-12.5e2").as_double(), -1250.0);

  const JsonValue arr = parse_ok("[1, \"two\", [3]]");
  ASSERT_EQ(arr.items().size(), 3u);
  EXPECT_EQ(arr.items()[1].as_string(), "two");

  const JsonValue obj = parse_ok("{\"a\": 1, \"b\": {\"c\": true}}");
  ASSERT_NE(obj.find("b"), nullptr);
  EXPECT_TRUE(obj.find("b")->find("c")->as_bool());
  EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(JsonParse, AsDoubleRejectsNonNumbers) {
  // as_double on a non-number is a caller bug: ContractViolation, never a
  // silent 0.0 (which "0" also maps to, making corruption invisible).
  EXPECT_THROW((void)parse_ok("null").as_double(), ContractViolation);
  EXPECT_THROW((void)parse_ok("true").as_double(), ContractViolation);
  EXPECT_THROW((void)parse_ok("\"3.5\"").as_double(), ContractViolation);
  EXPECT_THROW((void)parse_ok("[1]").as_double(), ContractViolation);
  EXPECT_THROW((void)parse_ok("{}").as_double(), ContractViolation);
  // Callers that may hold any kind gate on is_number() first.
  const JsonValue v = parse_ok("42");
  ASSERT_TRUE(v.is_number());
  EXPECT_DOUBLE_EQ(v.as_double(), 42.0);
  EXPECT_DOUBLE_EQ(parse_ok("0").as_double(), 0.0);
  EXPECT_DOUBLE_EQ(parse_ok("1e3").as_double(), 1000.0);
}

TEST(JsonParse, DecodesEscapes) {
  EXPECT_EQ(parse_ok("\"a\\n\\t\\\"b\\\\\"").as_string(), "a\n\t\"b\\");
  EXPECT_EQ(parse_ok("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(parse_ok("\"\\u00e9\"").as_string(), "\xc3\xa9");       // e-acute
  EXPECT_EQ(parse_ok("\"\\ud83d\\ude00\"").as_string(),             // emoji
            "\xf0\x9f\x98\x80");
}

TEST(JsonParse, RejectsGarbage) {
  parse_fail("");
  parse_fail("{");
  parse_fail("[1,]");
  parse_fail("{\"a\":}");
  parse_fail("nul");
  parse_fail("01");          // leading zero
  parse_fail("1. ");         // digit required after '.'
  parse_fail("\"unterminated");
  parse_fail("\"bad \\q escape\"");
  parse_fail("\"\\ud83d alone\"");  // unpaired surrogate
  parse_fail("{} trailing");
  parse_fail("{\"a\":1,\"a\":2}");  // duplicate key
}

TEST(JsonParse, DepthIsBounded) {
  std::string deep;
  for (int i = 0; i < JsonValue::kMaxDepth + 8; ++i) deep += '[';
  const std::string error = parse_fail(deep);
  EXPECT_NE(error.find("nesting too deep"), std::string::npos) << error;
}

TEST(JsonParse, RoundTripsWriterEscaping) {
  // Whatever JsonWriter emits, JsonValue must read back verbatim.
  const std::string nasty = "line\nbreak\ttab \"quote\" back\\slash \x01";
  std::ostringstream os;
  support::JsonWriter w(os, /*indent_width=*/-1);
  w.begin_object();
  w.kv("s", nasty);
  w.end_object();
  const JsonValue doc = parse_ok(os.str());
  EXPECT_EQ(doc.find("s")->as_string(), nasty);
}

// ---------------------------------------------------------------------------
// Request validation
// ---------------------------------------------------------------------------

std::string minimal_request(const std::string& extra = "") {
  return "{\"schema\":\"autolayout.request\",\"schema_version\":1,"
         "\"source\":\"x\"" +
         extra + "}";
}

TEST(Protocol, ParsesMinimalRequest) {
  const ParsedRequest p = parse_request(minimal_request(",\"id\":\"r1\""));
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_EQ(p.request.id, "r1");
  EXPECT_EQ(p.request.source, "x");
  // Service defaults: serial estimation; everything else as the CLI.
  EXPECT_EQ(p.request.options.threads, 1);
  EXPECT_EQ(p.request.options.procs, 16);
  EXPECT_TRUE(p.request.options.estimator_cache);
}

TEST(Protocol, AppliesOptionOverrides) {
  const ParsedRequest p = parse_request(minimal_request(
      ",\"options\":{\"procs\":8,\"machine\":\"paragon\",\"threads\":2,"
      "\"extended\":true,\"estimator_cache\":false,\"scalar_expansion\":true,"
      "\"replicate_unwritten\":true,\"mip_max_nodes\":17,"
      "\"mip_deadline_ms\":250},\"queue_deadline_ms\":1000,\"delay_ms\":5"));
  ASSERT_TRUE(p.ok) << p.error;
  const driver::ToolOptions& o = p.request.options;
  EXPECT_EQ(o.procs, 8);
  EXPECT_EQ(o.machine.name, "Intel Paragon");
  EXPECT_EQ(o.threads, 2);
  EXPECT_EQ(o.distribution_strategy, distrib::Strategy::ExtendedExhaustive);
  EXPECT_FALSE(o.estimator_cache);
  EXPECT_TRUE(o.scalar_expansion);
  EXPECT_TRUE(o.replicate_unwritten);
  EXPECT_EQ(o.mip.max_nodes, 17);
  EXPECT_DOUBLE_EQ(o.mip.deadline_ms, 250.0);
  EXPECT_EQ(p.request.queue_deadline_ms, 1000);
  EXPECT_EQ(p.request.delay_ms, 5);
}

TEST(Protocol, ParsesOracleValidationOptions) {
  const ParsedRequest p = parse_request(minimal_request(
      ",\"options\":{\"validate\":true,\"validate_rivals\":3,\"sim_seed\":99}"));
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_TRUE(p.request.options.validate);
  EXPECT_EQ(p.request.options.validate_rivals, 3);
  EXPECT_EQ(p.request.options.sim_seed, 99u);
  // Defaults when absent.
  const ParsedRequest q = parse_request(minimal_request());
  ASSERT_TRUE(q.ok) << q.error;
  EXPECT_FALSE(q.request.options.validate);
  EXPECT_EQ(q.request.options.sim_seed, 0x5EEDu);
  // Strictly typed: wrong types and negative seeds are structured errors.
  EXPECT_FALSE(parse_request(minimal_request(",\"options\":{\"validate\":1}")).ok);
  EXPECT_FALSE(
      parse_request(minimal_request(",\"options\":{\"sim_seed\":-1}")).ok);
  EXPECT_FALSE(
      parse_request(minimal_request(",\"options\":{\"validate_rivals\":-2}")).ok);
}

TEST(Protocol, ParsesRunCacheOptOut) {
  // Default: requests are cacheable.
  EXPECT_TRUE(parse_request(minimal_request()).request.options.run_cache);
  const ParsedRequest p =
      parse_request(minimal_request(",\"options\":{\"run_cache\":false}"));
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_FALSE(p.request.options.run_cache);
  // Strictly typed: a non-bool is a structured parse error, not a default.
  EXPECT_FALSE(
      parse_request(minimal_request(",\"options\":{\"run_cache\":1}")).ok);
  EXPECT_FALSE(
      parse_request(minimal_request(",\"options\":{\"run_cache\":\"no\"}")).ok);
}

TEST(Protocol, RejectsMalformedJson) {
  const ParsedRequest p = parse_request("{\"schema\": oops}");
  ASSERT_FALSE(p.ok);
  EXPECT_NE(p.error.find("malformed JSON"), std::string::npos) << p.error;
}

TEST(Protocol, RejectsNonObjectAndWrongSchema) {
  EXPECT_NE(parse_request("[1,2]").error.find("must be a JSON object"),
            std::string::npos);
  EXPECT_NE(parse_request("{\"schema\":\"other.schema\",\"schema_version\":1,"
                          "\"source\":\"x\"}")
                .error.find("unknown schema"),
            std::string::npos);
  EXPECT_NE(parse_request("{\"schema_version\":1,\"source\":\"x\"}")
                .error.find("missing \"schema\""),
            std::string::npos);
}

TEST(Protocol, RejectsUnknownSchemaVersion) {
  const ParsedRequest p = parse_request(
      "{\"schema\":\"autolayout.request\",\"schema_version\":2,"
      "\"source\":\"x\"}");
  ASSERT_FALSE(p.ok);
  EXPECT_NE(p.error.find("unsupported schema_version 2"), std::string::npos)
      << p.error;
  EXPECT_FALSE(
      parse_request("{\"schema\":\"autolayout.request\",\"source\":\"x\"}").ok);
}

TEST(Protocol, RejectsMissingOrAmbiguousSource) {
  EXPECT_NE(parse_request(
                "{\"schema\":\"autolayout.request\",\"schema_version\":1}")
                .error.find("needs \"source\""),
            std::string::npos);
  EXPECT_NE(parse_request("{\"schema\":\"autolayout.request\","
                          "\"schema_version\":1,\"source\":\"x\","
                          "\"file\":\"y.f\"}")
                .error.find("mutually exclusive"),
            std::string::npos);
  EXPECT_NE(parse_request("{\"schema\":\"autolayout.request\","
                          "\"schema_version\":1,\"source\":\"\"}")
                .error.find("must not be empty"),
            std::string::npos);
}

TEST(Protocol, RejectsUnknownKeysEverywhere) {
  EXPECT_NE(parse_request(minimal_request(",\"sourc\":\"typo\""))
                .error.find("unknown key \"sourc\""),
            std::string::npos);
  EXPECT_NE(parse_request(minimal_request(",\"options\":{\"proc\":4}"))
                .error.find("unknown key \"proc\""),
            std::string::npos);
}

TEST(Protocol, IntegerFieldsUseStrictLexemeParse) {
  // Fractional, exponent, and out-of-range forms that a double conversion
  // would silently accept all fail the CLI's whole-string integer rule.
  EXPECT_FALSE(parse_request(minimal_request(",\"options\":{\"procs\":16.5}")).ok);
  EXPECT_FALSE(parse_request(minimal_request(",\"options\":{\"procs\":1e2}")).ok);
  EXPECT_FALSE(parse_request(minimal_request(",\"options\":{\"procs\":0}")).ok);
  EXPECT_FALSE(parse_request(minimal_request(",\"options\":{\"procs\":\"16\"}")).ok);
  EXPECT_FALSE(
      parse_request(minimal_request(",\"options\":{\"mip_max_nodes\":0}")).ok);
  EXPECT_TRUE(
      parse_request(minimal_request(",\"options\":{\"procs\":16}")).ok);
}

TEST(Protocol, RejectsUnknownMachine) {
  const ParsedRequest p =
      parse_request(minimal_request(",\"options\":{\"machine\":\"cm5\"}"));
  ASSERT_FALSE(p.ok);
  EXPECT_NE(p.error.find("unknown machine"), std::string::npos);
}

TEST(Protocol, RejectsOversizedRequest) {
  const std::string line = minimal_request();
  const ParsedRequest p = parse_request(line, /*max_bytes=*/line.size() - 1);
  ASSERT_FALSE(p.ok);
  EXPECT_NE(p.error.find("exceeds"), std::string::npos) << p.error;
  EXPECT_TRUE(parse_request(line, line.size()).ok);
}

// ---------------------------------------------------------------------------
// Response builders
// ---------------------------------------------------------------------------

/// Every response must be ONE line of well-formed JSON ending in '\n'.
void expect_ndjson(const std::string& response) {
  ASSERT_FALSE(response.empty());
  EXPECT_EQ(response.back(), '\n');
  EXPECT_EQ(std::count(response.begin(), response.end(), '\n'), 1);
  JsonValue doc;
  std::string error;
  EXPECT_TRUE(JsonValue::parse(response, doc, error)) << error;
}

TEST(Protocol, ErrorAndRejectionResponsesAreSingleLine) {
  const std::string err =
      error_response("r1", "bad_request", "broken\nwith newline");
  expect_ndjson(err);
  const JsonValue doc = parse_ok(err);
  EXPECT_EQ(doc.find("status")->as_string(), "error");
  EXPECT_EQ(doc.find("error")->find("kind")->as_string(), "bad_request");

  const std::string rej = rejected_response("r2", "queue full");
  expect_ndjson(rej);
  EXPECT_EQ(parse_ok(rej).find("reason")->as_string(), "queue full");

  const std::string inf = infeasible_response("r3", "no candidates", 1.5);
  expect_ndjson(inf);
  EXPECT_EQ(parse_ok(inf).find("status")->as_string(), "infeasible");
}

TEST(Protocol, OkResponseEmbedsSchemaV3Report) {
  corpus::TestCase c{"adi", 32, corpus::Dtype::DoublePrecision, 4};
  Request req;
  req.id = "ok1";
  req.source = corpus::source_for(c);
  req.options.procs = 4;
  req.options.threads = 1;

  support::MetricsScope scope;
  const std::unique_ptr<driver::ToolResult> result =
      driver::run_tool(req.source, req.options);
  const std::string response =
      ok_response(req, *result, 12.5, scope.deltas());
  expect_ndjson(response);

  const JsonValue doc = parse_ok(response);
  EXPECT_EQ(doc.find("status")->as_string(), "ok");
  EXPECT_EQ(doc.find("id")->as_string(), "ok1");
  const JsonValue* report = doc.find("report");
  ASSERT_NE(report, nullptr);
  EXPECT_EQ(report->find("schema")->as_string(), "autolayout.run");
  EXPECT_EQ(report->find("schema_version")->number_lexeme(), "3");
  ASSERT_NE(report->find("phases"), nullptr);
  EXPECT_EQ(report->find("phases")->items().size(),
            static_cast<std::size_t>(result->pcfg.num_phases()));
  // The request's own counters rode along (the pipeline ran inside the
  // scope, so at least tool.runs must be attributed).
  const JsonValue* metrics = doc.find("request_metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_NE(metrics->find("tool.runs"), nullptr);
  EXPECT_EQ(metrics->find("tool.runs")->number_lexeme(), "1");
}

// PR 3's survival pattern over the wire: a starved node budget must come
// back as a normal "ok" response whose report records the fallback
// provenance, never as an error.
TEST(Protocol, BudgetExceededRequestSurvivesWithProvenance) {
  corpus::TestCase c{"adi", 32, corpus::Dtype::DoublePrecision, 4};
  ParsedRequest p = parse_request(
      "{\"schema\":\"autolayout.request\",\"schema_version\":1,"
      "\"id\":\"b1\",\"source\":" );
  // Build the request programmatically: the source needs JSON escaping.
  std::ostringstream os;
  support::JsonWriter w(os, /*indent_width=*/-1);
  w.begin_object();
  w.kv("schema", kRequestSchema);
  w.kv("schema_version", kProtocolVersion);
  w.kv("id", "b1");
  w.kv("source", corpus::source_for(c));
  w.key("options").begin_object();
  w.kv("procs", 4);
  w.kv("mip_max_nodes", 1);
  w.end_object();
  w.end_object();
  p = parse_request(os.str());
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_EQ(p.request.options.mip.max_nodes, 1);

  support::MetricsScope scope;
  const std::unique_ptr<driver::ToolResult> result =
      driver::run_tool(p.request.source, p.request.options);
  EXPECT_TRUE(result->verification.ok) << result->verification.message;
  const std::string response =
      ok_response(p.request, *result, 1.0, scope.deltas());
  expect_ndjson(response);
  const JsonValue doc = parse_ok(response);
  EXPECT_EQ(doc.find("status")->as_string(), "ok");
  const JsonValue* selection = doc.find("report")->find("selection");
  ASSERT_NE(selection, nullptr);
  EXPECT_EQ(selection->find("budgets")->find("max_nodes")->number_lexeme(), "1");
  ASSERT_NE(selection->find("verification"), nullptr);
  EXPECT_TRUE(selection->find("verification")->find("ok")->as_bool());
  // Whether this graph needs more than one node is the solver's business;
  // the provenance fields just have to be present and consistent.
  ASSERT_NE(selection->find("solver_status"), nullptr);
  ASSERT_NE(selection->find("engine"), nullptr);
  ASSERT_NE(selection->find("fallback"), nullptr);
}

TEST(Protocol, LoadSourceReadsFilesAndFailsStructurally) {
  Request req;
  req.file = "/nonexistent/path/nowhere.f";
  std::string error;
  EXPECT_FALSE(load_source(req, error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);

  Request inline_req;
  inline_req.source = "already here";
  EXPECT_TRUE(load_source(inline_req, error));
  EXPECT_EQ(inline_req.source, "already here");
}

} // namespace
} // namespace al::service
