// The multi-process fleet end to end (DESIGN.md section 17): N forked
// shards behind one SO_REUSEPORT port answer with selections identical to
// the standalone tool, a SIGKILLed shard is restarted by the supervisor
// (clients reconnect and keep being served), and a repeat request computes
// ONCE fleet-wide because the cross-shard segment serves every other
// shard's first probe.
//
// This binary forks, so it carries only the "service" label -- NOT "tsan":
// fork() from a sanitized multi-threaded parent is exactly the case tsan
// rejects. The thread-based shm-cache/arena coverage with the sanitizer on
// lives in shard_cache_test.cpp.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "corpus/corpus.hpp"
#include "driver/json_report.hpp"
#include "driver/tool.hpp"
#include "service/protocol.hpp"
#include "service/shard.hpp"
#include "support/json.hpp"
#include "support/json_parse.hpp"

namespace al::service {
namespace {

using support::JsonValue;

// A client send can race a SIGKILLed shard and draw an RST; the default
// SIGPIPE disposition would then kill the whole test binary mid-test and
// orphan the fleet's children. Ignore it for the process.
[[maybe_unused]] const auto kIgnoreSigpipe = ::signal(SIGPIPE, SIG_IGN);

std::string request_line(const corpus::TestCase& c, const std::string& id) {
  std::string line;
  support::JsonWriter w(line, -1);
  w.begin_object();
  w.kv("schema", kRequestSchema);
  w.kv("schema_version", kProtocolVersion);
  w.kv("id", id);
  w.kv("source", corpus::source_for(c));
  w.key("options").begin_object();
  w.kv("procs", c.procs);
  w.end_object();
  w.end_object();
  return line;  // ends "}\n"
}

JsonValue parse_doc(const std::string& text) {
  JsonValue doc;
  std::string error;
  EXPECT_TRUE(JsonValue::parse(text, doc, error)) << error << "\n" << text;
  return doc;
}

std::string selection_fingerprint(const JsonValue& report) {
  std::string fp;
  for (const JsonValue& phase : report.find("phases")->items()) {
    fp += phase.find("chosen")->number_lexeme();
    fp += ':';
    fp += phase.find("chosen_layout")->as_string();
    fp += '\n';
  }
  const JsonValue* sel = report.find("selection");
  fp += "total=";
  fp += sel->find("total_cost_us")->number_lexeme();
  return fp;
}

/// One blocking loopback connection; fresh per request in these tests so
/// the kernel's SO_REUSEPORT balancing gets a chance to spread load.
class Client {
public:
  explicit Client(int port) {
    // Retried: start() returns once the fleet is FORKED, not once every
    // child has reached listen(); until one does, a connect gets an RST
    // from the supervisor's bound-but-not-listening reservation socket.
    // The same window reopens briefly while a killed shard is reforked.
    for (int attempt = 0; attempt < 250 && fd_ < 0; ++attempt) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) break;
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(static_cast<std::uint16_t>(port));
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) {
        fd_ = fd;
        return;
      }
      ::close(fd);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ADD_FAILURE() << "could not connect to the fleet on port " << port;
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send_line(const std::string& line) {
    std::size_t off = 0;
    while (off < line.size()) {
      const ssize_t n = ::send(fd_, line.data() + off, line.size() - off, 0);
      ASSERT_GT(n, 0);
      off += static_cast<std::size_t>(n);
    }
  }

  std::string recv_line() {
    std::string buffer;
    while (true) {
      const std::size_t nl = buffer.find('\n');
      if (nl != std::string::npos) return buffer.substr(0, nl);
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) return std::string();
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
  }

private:
  int fd_ = -1;
};

/// A supervisor plus the thread pumping its supervision loop. start() forks
/// BEFORE the thread exists, so every child is created from a
/// single-threaded parent image; only crash restarts fork later.
class Fleet {
public:
  explicit Fleet(ShardOptions opts) : supervisor_(opts) {}
  ~Fleet() { stop(); }

  [[nodiscard]] bool start() {
    if (!supervisor_.start()) return false;
    runner_ = std::thread([this] { rc_ = supervisor_.run(); });
    return true;
  }
  void stop() {
    supervisor_.request_stop();
    if (runner_.joinable()) runner_.join();
  }

  [[nodiscard]] ShardSupervisor& supervisor() { return supervisor_; }
  [[nodiscard]] int rc() const { return rc_; }

private:
  ShardSupervisor supervisor_;
  std::thread runner_;
  int rc_ = -1;
};

ShardOptions fleet_options(int shards, int workers) {
  ShardOptions opts;
  opts.shards = shards;
  opts.server.workers = workers;
  opts.server.grace_ms = 2'000;
  return opts;
}

TEST(ShardFleet, RoundTripMatchesStandaloneTool) {
  const std::vector<corpus::TestCase> cases = {
      {"adi", 32, corpus::Dtype::DoublePrecision, 4},
      {"tomcatv", 32, corpus::Dtype::DoublePrecision, 4},
  };
  std::vector<std::string> expected;
  for (const corpus::TestCase& c : cases) {
    driver::ToolOptions topts;
    topts.procs = c.procs;
    topts.threads = 1;
    const auto result = driver::run_tool(corpus::source_for(c), topts);
    expected.push_back(
        selection_fingerprint(parse_doc(driver::json_report(*result))));
  }

  Fleet fleet(fleet_options(/*shards=*/2, /*workers=*/2));
  ASSERT_TRUE(fleet.start());
  ASSERT_GT(fleet.supervisor().port(), 0);

  constexpr int kRounds = 6;  // fresh connection each -> both shards see work
  int answered = 0;
  for (int round = 0; round < kRounds; ++round) {
    const corpus::TestCase& c = cases[static_cast<std::size_t>(round) %
                                      cases.size()];
    Client client(fleet.supervisor().port());
    client.send_line(request_line(c, c.program));
    const std::string line = client.recv_line();
    ASSERT_FALSE(line.empty()) << "round " << round;
    const JsonValue doc = parse_doc(line);
    ASSERT_EQ(doc.find("status")->as_string(), "ok") << line;
    EXPECT_EQ(selection_fingerprint(*doc.find("report")),
              expected[static_cast<std::size_t>(round) % cases.size()]);
    ++answered;
  }
  EXPECT_EQ(answered, kRounds);

  fleet.stop();
  EXPECT_EQ(fleet.rc(), 0);
  const JsonValue summary = parse_doc(fleet.supervisor().fleet_summary_json());
  EXPECT_EQ(summary.find("schema")->as_string(), "autolayout.fleet_summary");
  EXPECT_EQ(summary.find("cache_mode")->as_string(), "shared");
  EXPECT_EQ(static_cast<int>(summary.find("requests")->find("ok")->as_double()),
            kRounds);
  EXPECT_EQ(summary.find("restarts")->number_lexeme(), "0");
  // Every shard that served contributed a summary document.
  EXPECT_GE(summary.find("per_shard")->items().size(), 1u);
}

TEST(ShardFleet, KilledShardIsRestartedAndClientsReconnect) {
  Fleet fleet(fleet_options(/*shards=*/2, /*workers=*/1));
  ASSERT_TRUE(fleet.start());

  const corpus::TestCase c{"adi", 32, corpus::Dtype::DoublePrecision, 4};
  {
    Client client(fleet.supervisor().port());
    client.send_line(request_line(c, "before"));
    ASSERT_FALSE(client.recv_line().empty());
  }

  const std::vector<pid_t> pids = fleet.supervisor().shard_pids();
  ASSERT_EQ(pids.size(), 2u);
  ASSERT_GT(pids[0], 0);
  ASSERT_EQ(::kill(pids[0], SIGKILL), 0);

  // The supervisor's reap loop must notice and refork within its budget.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (fleet.supervisor().restarts() < 1 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_EQ(fleet.supervisor().restarts(), 1);

  // Full strength again: both pids live, new connections served. A few
  // rounds so the balancer touches the restarted listener too.
  for (int round = 0; round < 4; ++round) {
    Client client(fleet.supervisor().port());
    client.send_line(request_line(c, "after"));
    const std::string line = client.recv_line();
    ASSERT_FALSE(line.empty()) << "round " << round;
    EXPECT_EQ(parse_doc(line).find("status")->as_string(), "ok");
  }
  const std::vector<pid_t> after = fleet.supervisor().shard_pids();
  EXPECT_GT(after[0], 0);
  EXPECT_EQ(after[1], pids[1]);

  fleet.stop();
  const JsonValue summary = parse_doc(fleet.supervisor().fleet_summary_json());
  EXPECT_EQ(summary.find("restarts")->number_lexeme(), "1");
}

TEST(ShardFleet, RepeatRequestComputesOnceFleetWide) {
  Fleet fleet(fleet_options(/*shards=*/2, /*workers=*/1));
  ASSERT_TRUE(fleet.start());

  const corpus::TestCase c{"erlebacher", 16, corpus::Dtype::DoublePrecision, 4};
  constexpr int kConnections = 24;
  for (int i = 0; i < kConnections; ++i) {
    Client client(fleet.supervisor().port());
    client.send_line(request_line(c, "repeat"));
    const std::string line = client.recv_line();
    ASSERT_FALSE(line.empty()) << "connection " << i;
    ASSERT_EQ(parse_doc(line).find("status")->as_string(), "ok");
  }

  fleet.stop();
  const JsonValue summary = parse_doc(fleet.supervisor().fleet_summary_json());
  const JsonValue* cache = summary.find("cache");
  // THE cross-shard property: one compute total. Whichever shard saw the
  // key first filled the segment; every later first-probe on the other
  // shard promoted from it instead of recomputing.
  EXPECT_EQ(static_cast<int>(cache->find("misses")->as_double()), 1);
  EXPECT_EQ(static_cast<int>(cache->find("hits")->as_double()),
            kConnections - 1);
  const JsonValue* shard_cache = summary.find("shard_cache");
  ASSERT_NE(shard_cache, nullptr);
  EXPECT_EQ(static_cast<int>(shard_cache->find("fills")->as_double()), 1);
  const JsonValue* segment = shard_cache->find("segment");
  ASSERT_NE(segment, nullptr);
  EXPECT_EQ(static_cast<int>(segment->find("entries")->as_double()), 1);
}

} // namespace
} // namespace al::service
