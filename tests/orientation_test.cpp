// Orientation selection tests: mapping alignment partitions onto template
// dimensions, with and without a reference alignment.
#include <gtest/gtest.h>

#include "cag/conflict.hpp"
#include "cag/orientation.hpp"
#include "fortran/parser.hpp"

namespace al::cag {
namespace {

using fortran::parse_and_check;
using fortran::Program;

struct Fixture {
  Program prog = parse_and_check("      real a(4,4), b(4,4)\n      end\n");
  NodeUniverse uni = NodeUniverse::from_program(prog);
  int a = prog.symbols.lookup("a");
  int b = prog.symbols.lookup("b");
};

Resolution make_resolution(const Fixture& f, int a1_part, int a2_part, int b1_part,
                           int b2_part) {
  Resolution r;
  r.part_of.assign(static_cast<std::size_t>(f.uni.size()), -1);
  r.part_of[static_cast<std::size_t>(f.uni.index(f.a, 0))] = a1_part;
  r.part_of[static_cast<std::size_t>(f.uni.index(f.a, 1))] = a2_part;
  r.part_of[static_cast<std::size_t>(f.uni.index(f.b, 0))] = b1_part;
  r.part_of[static_cast<std::size_t>(f.uni.index(f.b, 1))] = b2_part;
  r.info = Partitioning(f.uni.size());
  return r;
}

TEST(Orientation, IdentityPreferredWithoutReference) {
  Fixture f;
  const Resolution r = make_resolution(f, 0, 1, 0, 1);
  const layout::Alignment al = orient(r, f.uni, 2, {f.a, f.b});
  EXPECT_EQ(al.axis_of(f.a, 0), 0);
  EXPECT_EQ(al.axis_of(f.a, 1), 1);
  EXPECT_EQ(al.axis_of(f.b, 0), 0);
  EXPECT_EQ(al.axis_of(f.b, 1), 1);
}

TEST(Orientation, SwappedPartitionsStillPreferNaturalDims) {
  Fixture f;
  // Partition 1 holds the first dims, partition 0 the second: the
  // orientation should map partition 1 -> template dim 0.
  const Resolution r = make_resolution(f, 1, 0, 1, 0);
  const layout::Alignment al = orient(r, f.uni, 2, {f.a, f.b});
  EXPECT_EQ(al.axis_of(f.a, 0), 0);
  EXPECT_EQ(al.axis_of(f.b, 1), 1);
}

TEST(Orientation, TransposedGroupStaysTransposed) {
  Fixture f;
  // a1 with b2 in partition 0; a2 with b1 in partition 1: whatever the
  // orientation, a and b end up transposed RELATIVE to each other.
  const Resolution r = make_resolution(f, 0, 1, 1, 0);
  const layout::Alignment al = orient(r, f.uni, 2, {f.a, f.b});
  EXPECT_EQ(al.axis_of(f.a, 0), al.axis_of(f.b, 1));
  EXPECT_EQ(al.axis_of(f.a, 1), al.axis_of(f.b, 0));
  EXPECT_NE(al.axis_of(f.a, 0), al.axis_of(f.a, 1));
}

TEST(Orientation, ReferenceOverridesNaturalOrder) {
  Fixture f;
  const Resolution r = make_resolution(f, 0, 1, 0, 1);
  // Reference aligns everything transposed; the orientation should follow.
  layout::Alignment ref;
  ref.set(layout::ArrayAlignment{f.a, {1, 0}});
  ref.set(layout::ArrayAlignment{f.b, {1, 0}});
  const layout::Alignment al = orient(r, f.uni, 2, {f.a, f.b}, &ref);
  EXPECT_EQ(al.axis_of(f.a, 0), 1);
  EXPECT_EQ(al.axis_of(f.a, 1), 0);
}

TEST(Orientation, UnconstrainedDimsFillFreeAxes) {
  Fixture f;
  // Only a's first dim is pinned (partition 0); everything else must still
  // get distinct axes per array.
  Resolution r = make_resolution(f, 0, -1, -1, -1);
  const layout::Alignment al = orient(r, f.uni, 2, {f.a, f.b});
  EXPECT_NE(al.axis_of(f.a, 0), al.axis_of(f.a, 1));
  EXPECT_NE(al.axis_of(f.b, 0), al.axis_of(f.b, 1));
}

TEST(Orientation, LowerRankArrayEmbeds) {
  Program prog = parse_and_check("      real m(4,4), v(4)\n      end\n");
  NodeUniverse uni = NodeUniverse::from_program(prog);
  const int m = prog.symbols.lookup("m");
  const int v = prog.symbols.lookup("v");
  Resolution r;
  r.part_of.assign(static_cast<std::size_t>(uni.size()), -1);
  // v1 aligned with m2.
  r.part_of[static_cast<std::size_t>(uni.index(m, 0))] = 0;
  r.part_of[static_cast<std::size_t>(uni.index(m, 1))] = 1;
  r.part_of[static_cast<std::size_t>(uni.index(v, 0))] = 1;
  r.info = Partitioning(uni.size());
  const layout::Alignment al = orient(r, uni, 2, {m, v});
  EXPECT_EQ(al.axis_of(v, 0), al.axis_of(m, 1));
}

} // namespace
} // namespace al::cag
