// Scalar expansion tests: eligibility rules, array shapes, CAG impact.
#include <gtest/gtest.h>

#include "cag/builder.hpp"
#include "driver/tool.hpp"
#include "fortran/parser.hpp"
#include "fortran/scalar_expand.hpp"
#include "pcfg/pcfg.hpp"

namespace al::fortran {
namespace {

Program expand(const std::string& src, int expect_expanded) {
  Program p = parse_and_check(src);
  EXPECT_EQ(expand_scalars(p), expect_expanded);
  return p;
}

TEST(ScalarExpand, BasicTemporaryBecomesArray) {
  Program p = expand(
      "      parameter (n = 8)\n"
      "      real a(n,n), b(n,n)\n"
      "      real t\n"
      "      do j = 1, n\n"
      "        do i = 1, n\n"
      "          t = a(i,j)*2.0\n"
      "          b(i,j) = t + 1.0\n"
      "        enddo\n"
      "      enddo\n"
      "      end\n",
      1);
  const int tx = p.symbols.lookup("t_x");
  ASSERT_GE(tx, 0);
  const Symbol& sym = p.symbols.at(tx);
  EXPECT_EQ(sym.kind, SymbolKind::Array);
  EXPECT_EQ(sym.rank(), 2);
  EXPECT_EQ(sym.dims[0].extent(), 8);  // j loop 1..8
  EXPECT_EQ(sym.dims[1].extent(), 8);  // i loop 1..8
  const std::string printed = to_string(p);
  EXPECT_NE(printed.find("t_x(j,i)"), std::string::npos);
}

TEST(ScalarExpand, ReductionIsNotExpanded) {
  expand(
      "      parameter (n = 8)\n"
      "      real a(n)\n"
      "      real s\n"
      "      do i = 1, n\n"
      "        s = s + a(i)\n"
      "      enddo\n"
      "      end\n",
      0);
}

TEST(ScalarExpand, ReadBeforeWriteIsNotExpanded) {
  expand(
      "      parameter (n = 8)\n"
      "      real a(n)\n"
      "      real t\n"
      "      t = 1.0\n"
      "      do i = 1, n\n"
      "        a(i) = t\n"
      "        t = a(i)*2.0\n"
      "      enddo\n"
      "      end\n",
      0);
}

TEST(ScalarExpand, UseAcrossNestsIsNotExpanded) {
  expand(
      "      parameter (n = 8)\n"
      "      real a(n)\n"
      "      real t\n"
      "      do i = 1, n\n"
      "        t = a(i)\n"
      "        a(i) = t*2.0\n"
      "      enddo\n"
      "      do i = 1, n\n"
      "        a(i) = a(i) + t\n"
      "      enddo\n"
      "      end\n",
      0);
}

TEST(ScalarExpand, MixedDepthsAreNotExpanded) {
  expand(
      "      parameter (n = 8)\n"
      "      real a(n,n)\n"
      "      real t\n"
      "      do j = 1, n\n"
      "        t = 0.0\n"
      "        do i = 1, n\n"
      "          a(i,j) = a(i,j) + t\n"
      "        enddo\n"
      "      enddo\n"
      "      end\n",
      0);
}

TEST(ScalarExpand, SymbolicBoundsAreNotExpanded) {
  expand(
      "      parameter (n = 8)\n"
      "      real a(n)\n"
      "      real t\n"
      "      m = 5\n"
      "      do i = 1, m\n"
      "        t = a(i)\n"
      "        a(i) = t*2.0\n"
      "      enddo\n"
      "      end\n",
      0);
}

TEST(ScalarExpand, MultipleIndependentTemporaries) {
  Program p = expand(
      "      parameter (n = 8)\n"
      "      real a(n), b(n)\n"
      "      real t, u\n"
      "      do i = 1, n\n"
      "        t = a(i)*2.0\n"
      "        u = b(i)*3.0\n"
      "        a(i) = t + u\n"
      "      enddo\n"
      "      end\n",
      2);
  EXPECT_GE(p.symbols.lookup("t_x"), 0);
  EXPECT_GE(p.symbols.lookup("u_x"), 0);
}

TEST(ScalarExpand, ExpandedScalarJoinsTheCag) {
  // Without expansion the temporary never appears in the CAG; with it, the
  // CAG couples t_x with a and b, giving it a layout of its own -- exactly
  // why the paper's ILP instances grew.
  const char* src =
      "      parameter (n = 8)\n"
      "      real a(n,n), b(n,n)\n"
      "      real t\n"
      "      do j = 1, n\n"
      "        do i = 1, n\n"
      "          t = a(i,j)*2.0\n"
      "          b(i,j) = t + 1.0\n"
      "        enddo\n"
      "      enddo\n"
      "      end\n";
  Program plain = parse_and_check(src);
  pcfg::Pcfg g1 = pcfg::Pcfg::build(plain);
  cag::NodeUniverse u1 = cag::NodeUniverse::from_program(plain);
  const auto cag_plain = cag::build_phase_cag(g1.phase(0), u1, plain.symbols);

  Program exp = parse_and_check(src);
  ASSERT_EQ(expand_scalars(exp), 1);
  pcfg::Pcfg g2 = pcfg::Pcfg::build(exp);
  cag::NodeUniverse u2 = cag::NodeUniverse::from_program(exp);
  const auto cag_exp = cag::build_phase_cag(g2.phase(0), u2, exp.symbols);

  EXPECT_GT(u2.size(), u1.size());
  EXPECT_GT(cag_exp.edges().size(), cag_plain.edges().size());
}

TEST(ScalarExpand, ToolRunsWithExpansionEnabled) {
  driver::ToolOptions opts;
  opts.procs = 8;
  opts.scalar_expansion = true;
  auto r = driver::run_tool(
      "      parameter (n = 32)\n"
      "      real a(n,n), b(n,n)\n"
      "      real t\n"
      "      do j = 1, n\n"
      "        do i = 1, n\n"
      "          t = a(i,j)*2.0\n"
      "          b(i,j) = t + 1.0\n"
      "        enddo\n"
      "      enddo\n"
      "      end\n",
      opts);
  EXPECT_EQ(r->pcfg.num_phases(), 1);
  // The expanded temporary participates in the template/program arrays.
  EXPECT_GE(r->program.array_symbols().size(), 3u);
}

} // namespace
} // namespace al::fortran
