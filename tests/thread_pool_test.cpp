// Thread pool unit tests: tasks drain, parallel_for covers every index
// exactly once, exceptions propagate to the caller, nested parallel_for
// degrades to serial instead of deadlocking, and the serial fallbacks
// (null pool, tiny trip counts) behave identically.
#include <gtest/gtest.h>

#if defined(__linux__)
#include <sched.h>
#endif

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/thread_pool.hpp"

namespace al::support {
namespace {

TEST(ThreadPool, DefaultThreadsAtLeastOne) {
  EXPECT_GE(ThreadPool::default_threads(), 1);
}

// Regression: on a container pinned to fewer CPUs than the machine has,
// hardware_concurrency() oversells the parallelism and the estimation pool
// defaults SLOWER than serial. The default must respect both the process
// affinity mask and hardware_concurrency().
TEST(ThreadPool, DefaultThreadsClampedToUsableCpus) {
  const int def = ThreadPool::default_threads();
  const unsigned hc = std::thread::hardware_concurrency();
  if (hc > 0) EXPECT_LE(def, static_cast<int>(hc));
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    EXPECT_LE(def, CPU_COUNT(&set));
  }
#endif
}

TEST(ThreadPool, DefaultConstructedPoolUsesDefaultThreads) {
  ThreadPool pool;  // threads = 0 picks default_threads()
  EXPECT_EQ(pool.num_threads(), ThreadPool::default_threads());
}

TEST(ThreadPool, SubmittedTasksAllRunBeforeDestruction) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4, /*queue_capacity=*/8);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
    // The bounded queue (capacity 8 < 100 tasks) forces submit to block and
    // unblock along the way; the destructor drains the rest.
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(&pool, kN, [&](std::size_t i) { hits[i].fetch_add(1); }, /*grain=*/7);
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForNullPoolRunsSerially) {
  std::vector<int> hits(64, 0);
  parallel_for(nullptr, hits.size(), [&](std::size_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForZeroIterationsIsANoOp) {
  ThreadPool pool(2);
  parallel_for(&pool, 0, [](std::size_t) { FAIL() << "body must not run"; });
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  try {
    parallel_for(&pool, 1000, [&](std::size_t i) {
      ran.fetch_add(1);
      if (i == 137) throw std::runtime_error("boom at 137");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 137");
  }
  // The loop still claims every index (no partial-completion limbo), so the
  // pool is clean for the next call.
  EXPECT_EQ(ran.load(), 1000);
  std::atomic<int> again{0};
  parallel_for(&pool, 10, [&](std::size_t) { again.fetch_add(1); });
  EXPECT_EQ(again.load(), 10);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  constexpr std::size_t kOuter = 16;
  constexpr std::size_t kInner = 32;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  parallel_for(&pool, kOuter, [&](std::size_t i) {
    // On a worker thread this must degrade to the serial loop; a second
    // fan-out onto the same (fully busy) pool would deadlock.
    parallel_for(&pool, kInner,
                 [&](std::size_t j) { hits[i * kInner + j].fetch_add(1); });
  });
  for (std::size_t k = 0; k < hits.size(); ++k) {
    ASSERT_EQ(hits[k].load(), 1) << "slot " << k;
  }
}

TEST(ThreadPool, OnWorkerThreadDistinguishesPools) {
  ThreadPool a(2);
  ThreadPool b(2);
  EXPECT_FALSE(a.on_worker_thread());
  std::atomic<int> inside_a{0};
  std::atomic<int> inside_b{0};
  parallel_for(&a, 8, [&](std::size_t) {
    if (a.on_worker_thread()) inside_a.fetch_add(1);
    if (b.on_worker_thread()) inside_b.fetch_add(1);
  });
  EXPECT_EQ(inside_b.load(), 0);  // a's workers are never b's
}

} // namespace
} // namespace al::support
