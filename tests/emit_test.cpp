// HPF emission tests, including the strongest property we have: the
// annotated program is itself valid input (directives are comments), so
// emit -> parse -> analyze must reproduce the phase structure.
#include <gtest/gtest.h>

#include "corpus/corpus.hpp"
#include "driver/emit.hpp"
#include "driver/tool.hpp"
#include "fortran/parser.hpp"
#include "pcfg/pcfg.hpp"

namespace al::driver {
namespace {

std::unique_ptr<ToolResult> run(const std::string& src, int procs = 8,
                                ToolOptions opts = {}) {
  opts.procs = procs;
  return run_tool(src, opts);
}

TEST(EmitProgram, DeclarationsReconstructed) {
  auto r = run(corpus::adi_source(64, corpus::Dtype::DoublePrecision));
  const std::string s = emit_annotated_program(*r);
  EXPECT_NE(s.find("parameter (n = 64, niter = 5)"), std::string::npos);
  EXPECT_NE(s.find("double precision x(64,64)"), std::string::npos);
  EXPECT_NE(s.find("integer i, j, iter"), std::string::npos);
}

TEST(EmitProgram, StraightLineCodeIsKept) {
  auto r = run(corpus::tomcatv_source(64, corpus::Dtype::DoublePrecision));
  const std::string s = emit_annotated_program(*r);
  // The scalar reset between phases must survive.
  EXPECT_NE(s.find("rxm = 0"), std::string::npos);
  EXPECT_NE(s.find("if ("), std::string::npos);  // the convergence IF
}

class EmitRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(EmitRoundTrip, AnnotatedProgramReparsesWithSamePhases) {
  const corpus::TestCase c{GetParam(), 32,
                           std::string(GetParam()) == "shallow"
                               ? corpus::Dtype::Real
                               : corpus::Dtype::DoublePrecision,
                           8};
  ToolOptions opts;
  opts.procs = 8;
  auto r = run_tool(corpus::source_for(c), opts);
  const std::string annotated = emit_annotated_program(*r);
  // Directives are '!' comments: the emitted text is a legal program.
  fortran::Program reparsed = fortran::parse_and_check(annotated);
  pcfg::Pcfg g = pcfg::Pcfg::build(reparsed);
  EXPECT_EQ(g.num_phases(), r->pcfg.num_phases());
}

INSTANTIATE_TEST_SUITE_P(Corpus, EmitRoundTrip,
                         ::testing::Values("adi", "erlebacher", "tomcatv", "shallow"));

TEST(EmitProgram, ReplicatedArraysAlignWithStars) {
  // Force a replicated candidate through a pinned phase.
  const std::string src = corpus::adi_source(64, corpus::Dtype::DoublePrecision);
  ToolOptions opts;
  opts.procs = 8;
  // Symbol index of x (parameters occupy the first table slots).
  fortran::Program probe = fortran::parse_and_check(src);
  layout::ArrayAlignment aa;
  aa.array = probe.symbols.lookup("x");
  aa.axis = {0, 1};
  aa.replicated = true;
  layout::Alignment align;
  align.set(aa);
  opts.pinned_phases.emplace_back(
      0, layout::Layout(align, layout::Distribution::block_1d(2, 0, 8)));
  auto r = run_tool(src, opts);
  const std::string s = emit_initial_directives(*r);
  EXPECT_NE(s.find("ALIGN x(i,j) WITH T(*,*)"), std::string::npos);
}

TEST(EmitProgram, LowerBoundArraysPrintRanges) {
  auto r = run(
      "      parameter (n = 16)\n"
      "      real a(0:n, n)\n"
      "      do j = 1, n\n        do i = 1, n\n"
      "          a(i,j) = 1.0\n"
      "        enddo\n      enddo\n      end\n");
  const std::string s = emit_annotated_program(*r);
  EXPECT_NE(s.find("a(0:16,16)"), std::string::npos);
}

} // namespace
} // namespace al::driver
