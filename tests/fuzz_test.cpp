// Randomized end-to-end robustness: generate small random-but-valid
// Fortran programs (stencils, recurrences, transposed couplings, time
// loops, branches), run the full pipeline, and check the invariants that
// must hold for ANY input:
//   * the tool runs without throwing,
//   * the selection is a valid assignment into the search spaces,
//   * the selection's cost is no worse than any sampled alternative
//     (the 0-1 solver is supposed to be OPTIMAL),
//   * the simulator is deterministic.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "driver/tool.hpp"
#include "select/ilp_selection.hpp"
#include "sim/measure.hpp"

namespace al {
namespace {

/// Emits one random loop nest over 2-D arrays.
void emit_random_phase(std::ostream& os, std::mt19937& rng, int narrays) {
  auto arr = [&](int k) { return "q" + std::to_string(k % narrays); };
  const int lhs = static_cast<int>(rng() % static_cast<unsigned>(narrays));
  const int rhs = static_cast<int>(rng() % static_cast<unsigned>(narrays));
  const int kind = static_cast<int>(rng() % 5);
  os << "        do j = 2, n-1\n          do i = 2, n-1\n";
  switch (kind) {
    case 0:  // aligned copy + arithmetic
      os << "            " << arr(lhs) << "(i,j) = " << arr(rhs)
         << "(i,j)*0.5 + 1.0\n";
      break;
    case 1:  // stencil
      os << "            " << arr(lhs) << "(i,j) = " << arr(rhs) << "(i-1,j) + "
         << arr(rhs) << "(i+1,j) + " << arr(rhs) << "(i,j-1)\n";
      break;
    case 2:  // transposed coupling
      os << "            " << arr(lhs) << "(i,j) = " << arr(rhs) << "(j,i)\n";
      break;
    case 3:  // recurrence along dim 1 (self)
      os << "            " << arr(lhs) << "(i,j) = " << arr(lhs)
         << "(i-1,j)*0.25 + " << arr(rhs) << "(i,j)\n";
      break;
    default:  // recurrence along dim 2 (self)
      os << "            " << arr(lhs) << "(i,j) = " << arr(lhs)
         << "(i,j-1)*0.25 + " << arr(rhs) << "(i,j)\n";
      break;
  }
  os << "          enddo\n        enddo\n";
}

std::string random_program(std::mt19937& rng) {
  const int narrays = 2 + static_cast<int>(rng() % 2);
  const int phases = 2 + static_cast<int>(rng() % 5);
  const bool time_loop = rng() % 2 == 0;
  const bool branch = rng() % 3 == 0;
  std::ostringstream os;
  os << "      program fuzz\n      parameter (n = 24)\n      real ";
  for (int a = 0; a < narrays; ++a) {
    if (a) os << ", ";
    os << "q" << a << "(n,n)";
  }
  os << "\n      integer i, j, it\n";
  if (time_loop) os << "      do it = 1, 4\n";
  for (int p = 0; p < phases; ++p) {
    if (branch && p == phases / 2) {
      os << "        if (q0(1,1) .gt. 0.0) then\n";
      emit_random_phase(os, rng, narrays);
      os << "        endif\n";
    } else {
      emit_random_phase(os, rng, narrays);
    }
  }
  if (time_loop) os << "      enddo\n";
  os << "      end\n";
  return os.str();
}

class PipelineFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PipelineFuzz, InvariantsHoldOnRandomPrograms) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 2654435761u);
  for (int trial = 0; trial < 6; ++trial) {
    const std::string src = random_program(rng);
    SCOPED_TRACE("program:\n" + src);

    driver::ToolOptions opts;
    opts.procs = 1 << (1 + rng() % 4);  // 2..16
    std::unique_ptr<driver::ToolResult> tool;
    ASSERT_NO_THROW(tool = driver::run_tool(src, opts));

    // Valid assignment.
    ASSERT_EQ(tool->selection.chosen.size(),
              static_cast<std::size_t>(tool->pcfg.num_phases()));
    for (int p = 0; p < tool->pcfg.num_phases(); ++p) {
      const int c = tool->selection.chosen[static_cast<std::size_t>(p)];
      ASSERT_GE(c, 0);
      ASSERT_LT(c, static_cast<int>(tool->spaces[static_cast<std::size_t>(p)].size()));
    }

    // Optimality: no sampled assignment may beat the selection.
    const double best = select::assignment_cost(tool->graph, tool->selection.chosen);
    EXPECT_NEAR(best, tool->selection.total_cost_us, 1e-6 * (1.0 + best));
    for (int sample = 0; sample < 20; ++sample) {
      std::vector<int> alt;
      for (int p = 0; p < tool->pcfg.num_phases(); ++p) {
        alt.push_back(static_cast<int>(
            rng() % static_cast<unsigned>(tool->spaces[static_cast<std::size_t>(p)].size())));
      }
      EXPECT_GE(select::assignment_cost(tool->graph, alt), best - 1e-6 * (1.0 + best));
    }

    // Simulator determinism on the selection.
    const double m1 =
        sim::measure_program(*tool->estimator, tool->templ, tool->spaces,
                             tool->selection.chosen)
            .total_us;
    const double m2 =
        sim::measure_program(*tool->estimator, tool->templ, tool->spaces,
                             tool->selection.chosen)
            .total_us;
    EXPECT_DOUBLE_EQ(m1, m2);
    EXPECT_GT(m1, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz, ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(PipelineFuzz, ExtendedOptionsOnRandomPrograms) {
  std::mt19937 rng(424242u);
  for (int trial = 0; trial < 4; ++trial) {
    const std::string src = random_program(rng);
    SCOPED_TRACE("program:\n" + src);
    driver::ToolOptions opts;
    opts.procs = 8;
    opts.distribution_strategy = distrib::Strategy::ExtendedExhaustive;
    opts.replicate_unwritten = true;
    opts.scalar_expansion = true;
    std::unique_ptr<driver::ToolResult> tool;
    ASSERT_NO_THROW(tool = driver::run_tool(src, opts));
    EXPECT_GT(tool->selection.total_cost_us, 0.0);
  }
}

} // namespace
} // namespace al
