// Randomized end-to-end robustness: generate small random-but-valid
// Fortran programs through the generative workload engine (src/gen,
// DESIGN.md section 14), run the full pipeline, and check the invariants
// that must hold for ANY input:
//   * the tool runs without throwing,
//   * the selection is a valid assignment into the search spaces,
//   * the selection's cost is no worse than any sampled alternative
//     (the 0-1 solver is supposed to be OPTIMAL),
//   * the simulator is deterministic.
//
// Historically this file carried its own ad-hoc generator (2-D arrays only,
// `rng() % n` draws with modulo bias). It now draws from gen::random_spec:
// uniform_int_distribution draws, ranks 1..3, the full idiom library. The
// seed values (1..6, 424242) are kept from the old suite; the programs they
// map to changed with the engine swap, which is fine -- the invariants are
// seed-independent.
#include <gtest/gtest.h>

#include "driver/tool.hpp"
#include "gen/generator.hpp"
#include "gen/rng.hpp"
#include "select/ilp_selection.hpp"
#include "sim/measure.hpp"

namespace al {
namespace {

gen::GenOptions fuzz_options() {
  gen::GenOptions opts;
  opts.min_phases = 2;
  opts.max_phases = 6;
  opts.n = 24;
  return opts;
}

class PipelineFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PipelineFuzz, InvariantsHoldOnRandomPrograms) {
  gen::Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u);
  const gen::GenOptions gopts = fuzz_options();
  for (int trial = 0; trial < 6; ++trial) {
    const std::string src = gen::random_program(rng, gopts);
    SCOPED_TRACE("program:\n" + src);

    driver::ToolOptions opts;
    opts.procs = 1 << rng.int_in(1, 4);  // 2..16
    std::unique_ptr<driver::ToolResult> tool;
    ASSERT_NO_THROW(tool = driver::run_tool(src, opts));

    // Valid assignment.
    ASSERT_EQ(tool->selection.chosen.size(),
              static_cast<std::size_t>(tool->pcfg.num_phases()));
    for (int p = 0; p < tool->pcfg.num_phases(); ++p) {
      const int c = tool->selection.chosen[static_cast<std::size_t>(p)];
      ASSERT_GE(c, 0);
      ASSERT_LT(c, static_cast<int>(tool->spaces[static_cast<std::size_t>(p)].size()));
    }

    // Optimality: no sampled assignment may beat the selection.
    const double best = select::assignment_cost(tool->graph, tool->selection.chosen);
    EXPECT_NEAR(best, tool->selection.total_cost_us, 1e-6 * (1.0 + best));
    for (int sample = 0; sample < 20; ++sample) {
      std::vector<int> alt;
      for (int p = 0; p < tool->pcfg.num_phases(); ++p) {
        const int space =
            static_cast<int>(tool->spaces[static_cast<std::size_t>(p)].size());
        alt.push_back(rng.int_in(0, space - 1));
      }
      EXPECT_GE(select::assignment_cost(tool->graph, alt), best - 1e-6 * (1.0 + best));
    }

    // Simulator determinism on the selection.
    const double m1 =
        sim::measure_program(*tool->estimator, tool->templ, tool->spaces,
                             tool->selection.chosen)
            .total_us;
    const double m2 =
        sim::measure_program(*tool->estimator, tool->templ, tool->spaces,
                             tool->selection.chosen)
            .total_us;
    EXPECT_DOUBLE_EQ(m1, m2);
    EXPECT_GT(m1, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz, ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(PipelineFuzz, ExtendedOptionsOnRandomPrograms) {
  gen::Rng rng(424242u);
  const gen::GenOptions gopts = fuzz_options();
  for (int trial = 0; trial < 4; ++trial) {
    const std::string src = gen::random_program(rng, gopts);
    SCOPED_TRACE("program:\n" + src);
    driver::ToolOptions opts;
    opts.procs = 8;
    opts.distribution_strategy = distrib::Strategy::ExtendedExhaustive;
    opts.replicate_unwritten = true;
    opts.scalar_expansion = true;
    std::unique_ptr<driver::ToolResult> tool;
    ASSERT_NO_THROW(tool = driver::run_tool(src, opts));
    EXPECT_GT(tool->selection.total_cost_us, 0.0);
  }
}

} // namespace
} // namespace al
