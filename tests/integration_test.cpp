// Integration tests mirroring the paper's headline experimental claims at
// reduced problem sizes (the full grids run in bench/table_summary).
#include <gtest/gtest.h>

#include "corpus/corpus.hpp"
#include "driver/testcase.hpp"
#include "driver/tool.hpp"

namespace al {
namespace {

driver::CaseReport report_for(const corpus::TestCase& c) {
  driver::ToolOptions opts;
  opts.procs = c.procs;
  auto tool = driver::run_tool(corpus::source_for(c), opts);
  return driver::evaluate_alternatives(*tool);
}

const driver::Alternative* alt_with(const driver::CaseReport& rep, const char* needle) {
  for (const driver::Alternative& a : rep.alternatives) {
    if (a.name.find(needle) != std::string::npos) return &a;
  }
  return nullptr;
}

TEST(Integration, AdiColumnIsAlwaysWorst) {
  // Paper: "Distributing the second dimension (column layout) ... was
  // always the worst choice."
  for (int procs : {4, 16}) {
    const driver::CaseReport rep =
        report_for({"adi", 128, corpus::Dtype::DoublePrecision, procs});
    const driver::Alternative* col = alt_with(rep, "dim 2");
    ASSERT_NE(col, nullptr);
    for (const driver::Alternative& a : rep.alternatives) {
      EXPECT_LE(a.meas_us, col->meas_us * (1.0 + 1e-9)) << a.name;
    }
  }
}

TEST(Integration, AdiFigure3Headline) {
  // Figure 3 (512x512, double, 16 procs): row-wise static layout wins,
  // the tool picks it, and the ranking is correct.
  const driver::CaseReport rep =
      report_for({"adi", 512, corpus::Dtype::DoublePrecision, 16});
  EXPECT_TRUE(rep.picked_best);
  EXPECT_TRUE(rep.ranking_correct);
  const driver::Alternative& best =
      rep.alternatives[static_cast<std::size_t>(rep.best_measured)];
  EXPECT_NE(best.name.find("dim 1"), std::string::npos);
}

TEST(Integration, ErlebacherFinePipelineNeverProfitable) {
  // Paper: "Distributing the first dimension resulted in introducing a
  // fine-grain pipeline which was never profitable."
  for (int procs : {8, 32}) {
    const driver::CaseReport rep =
        report_for({"erlebacher", 32, corpus::Dtype::DoublePrecision, procs});
    const driver::Alternative* dim1 = alt_with(rep, "dim 1");
    const driver::Alternative* dim2 = alt_with(rep, "dim 2");
    ASSERT_NE(dim1, nullptr);
    ASSERT_NE(dim2, nullptr);
    EXPECT_GT(dim1->meas_us, dim2->meas_us);
    EXPECT_NE(rep.best_measured,
              static_cast<int>(dim1 - rep.alternatives.data()));
  }
}

TEST(Integration, ErlebacherSequentializedDimLosesAtScale) {
  const driver::CaseReport rep =
      report_for({"erlebacher", 32, corpus::Dtype::DoublePrecision, 32});
  const driver::Alternative* dim3 = alt_with(rep, "dim 3");
  const driver::Alternative* dim2 = alt_with(rep, "dim 2");
  ASSERT_NE(dim3, nullptr);
  ASSERT_NE(dim2, nullptr);
  EXPECT_GT(dim3->meas_us, dim2->meas_us);
}

TEST(Integration, ShallowColumnBeatsRow) {
  // Paper: "a row distribution requires messages to be buffered. Therefore
  // the column distribution should perform slightly better."
  const driver::CaseReport rep = report_for({"shallow", 256, corpus::Dtype::Real, 16});
  const driver::Alternative* row = alt_with(rep, "dim 1");
  const driver::Alternative* col = alt_with(rep, "dim 2");
  ASSERT_NE(row, nullptr);
  ASSERT_NE(col, nullptr);
  EXPECT_LT(col->meas_us, row->meas_us);
  // "Slightly": within a factor of 1.5, not an order of magnitude.
  EXPECT_GT(col->meas_us, row->meas_us / 1.5);
  EXPECT_TRUE(rep.picked_best);
}

TEST(Integration, TomcatvToolAlwaysPicksColumn) {
  for (int procs : {4, 16}) {
    driver::ToolOptions opts;
    opts.procs = procs;
    corpus::TestCase c{"tomcatv", 128, corpus::Dtype::DoublePrecision, procs};
    auto tool = driver::run_tool(corpus::source_for(c), opts);
    const int x = tool->program.symbols.lookup("x");
    for (int p = 0; p < tool->pcfg.num_phases(); ++p) {
      if (!tool->pcfg.phase(p).references_array(x)) continue;
      EXPECT_EQ(tool->chosen_layout(p).distributed_array_dim(x, 2), 1)
          << "P=" << procs << " phase " << p;
    }
  }
}

TEST(Integration, ToolLossIsBoundedWhenSuboptimal) {
  // Paper: worst suboptimal pick cost 9.3%. Allow head-room, but a pick
  // that loses 50% would mean the estimator is broken.
  for (const char* prog : {"adi", "tomcatv", "shallow"}) {
    const corpus::TestCase c{prog, 128,
                             std::string(prog) == "shallow"
                                 ? corpus::Dtype::Real
                                 : corpus::Dtype::DoublePrecision,
                             8};
    const driver::CaseReport rep = report_for(c);
    EXPECT_LT(rep.loss_fraction, 0.30) << prog;
  }
}

TEST(Integration, IlpBudgetsHold) {
  // Paper: "All encountered instances ... were solved in less than 1.1
  // seconds" (on a 1995 SPARC-10; we must be far under that).
  for (const char* prog : {"adi", "tomcatv", "shallow"}) {
    driver::ToolOptions opts;
    opts.procs = 16;
    corpus::TestCase c{prog, 128,
                       std::string(prog) == "shallow" ? corpus::Dtype::Real
                                                      : corpus::Dtype::DoublePrecision,
                       16};
    auto tool = driver::run_tool(corpus::source_for(c), opts);
    EXPECT_LT(tool->selection.solve_ms, 1100.0) << prog;
  }
}

TEST(Integration, ParagonRetargetingChangesCosts) {
  // Framework parameterization: the same program on a faster-network
  // machine gets cheaper communication (and possibly different trade-offs).
  corpus::TestCase c{"adi", 128, corpus::Dtype::DoublePrecision, 16};
  driver::ToolOptions ipsc;
  ipsc.procs = 16;
  driver::ToolOptions paragon;
  paragon.procs = 16;
  paragon.machine = machine::make_paragon();
  auto ti = driver::run_tool(corpus::source_for(c), ipsc);
  auto tp = driver::run_tool(corpus::source_for(c), paragon);
  EXPECT_LT(tp->selection.total_cost_us, ti->selection.total_cost_us);
}

TEST(Integration, ExtendedDistributionStrategyEnlargesSpaces) {
  corpus::TestCase c{"adi", 64, corpus::Dtype::Real, 8};
  driver::ToolOptions basic;
  basic.procs = 8;
  driver::ToolOptions extended;
  extended.procs = 8;
  extended.distribution_strategy = distrib::Strategy::ExtendedExhaustive;
  auto tb = driver::run_tool(corpus::source_for(c), basic);
  auto te = driver::run_tool(corpus::source_for(c), extended);
  EXPECT_GT(te->distributions.size(), tb->distributions.size());
  EXPECT_GT(te->spaces[2].size(), tb->spaces[2].size());
  // Selection still works over the bigger space.
  EXPECT_LE(te->selection.total_cost_us, tb->selection.total_cost_us * (1.0 + 1e-9));
}

} // namespace
} // namespace al
