// SPMD simulator tests: determinism, jitter bounds, wavefront behaviour,
// boundary-processor effects, program-level measurement.
#include <gtest/gtest.h>

#include "corpus/corpus.hpp"
#include "driver/tool.hpp"
#include "fortran/parser.hpp"
#include "sim/measure.hpp"

namespace al::sim {
namespace {

TEST(Hash, DeterministicAndSpread) {
  EXPECT_EQ(hash64(1), hash64(1));
  EXPECT_NE(hash64(1), hash64(2));
  EXPECT_NE(hash64(0), 0u);
}

TEST(Jitter, WithinAmplitude) {
  for (std::uint64_t k = 0; k < 2000; ++k) {
    const double j = jitter(k, 0.05);
    EXPECT_GE(j, 0.95);
    EXPECT_LE(j, 1.05);
  }
}

TEST(Jitter, ZeroAmplitudeIsUnity) {
  EXPECT_DOUBLE_EQ(jitter(123, 0.0), 1.0);
}

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  q.push({3.0, 1, 0});
  q.push({1.0, 2, 0});
  q.push({2.0, 3, 0});
  EXPECT_EQ(q.pop().proc, 2);
  EXPECT_EQ(q.pop().proc, 3);
  EXPECT_EQ(q.pop().proc, 1);
  EXPECT_TRUE(q.empty());
}

TEST(Network, CalibratedFromMachineModel) {
  const machine::MachineModel m = machine::make_ipsc860();
  const NetworkParams net = NetworkParams::for_machine(m);
  EXPECT_GT(net.per_byte_us, 0.0);
  EXPECT_GT(net.send_overhead_us, 0.0);
  // A simulated unit-stride message should be in the same ballpark as the
  // training-set value for the same size.
  const double sim = message_us(net, 4096.0, machine::Stride::Unit);
  const double train = m.comm_us(machine::CommPattern::SendRecv, 2, 4096.0,
                                 machine::Stride::Unit, machine::LatencyClass::High);
  EXPECT_NEAR(sim / train, 1.0, 0.35);
}

TEST(Network, StridedCostsMore) {
  const NetworkParams net = NetworkParams::for_machine(machine::make_ipsc860());
  EXPECT_GT(message_us(net, 8192.0, machine::Stride::NonUnit),
            message_us(net, 8192.0, machine::Stride::Unit));
}

// ---------------------------------------------------------------------------
// Program-level measurement.
// ---------------------------------------------------------------------------

struct ToolFixture {
  std::unique_ptr<driver::ToolResult> tool;

  explicit ToolFixture(const char* prog = "adi", long n = 64, int procs = 8) {
    corpus::TestCase c{prog, n,
                       std::string(prog) == "shallow" ? corpus::Dtype::Real
                                                      : corpus::Dtype::DoublePrecision,
                       procs};
    driver::ToolOptions o;
    o.procs = procs;
    tool = driver::run_tool(corpus::source_for(c), o);
  }

  Measurement measure(const std::vector<int>& chosen, std::uint64_t seed = 0x5EED) {
    return measure_program(*tool->estimator, tool->templ, tool->spaces, chosen, seed);
  }
};

TEST(Measure, DeterministicForSameSeed) {
  ToolFixture f;
  const Measurement a = f.measure(f.tool->selection.chosen);
  const Measurement b = f.measure(f.tool->selection.chosen);
  EXPECT_DOUBLE_EQ(a.total_us, b.total_us);
}

TEST(Measure, DifferentSeedsDifferSlightly) {
  ToolFixture f;
  const Measurement a = f.measure(f.tool->selection.chosen, 1);
  const Measurement b = f.measure(f.tool->selection.chosen, 2);
  EXPECT_NE(a.total_us, b.total_us);
  EXPECT_NEAR(a.total_us / b.total_us, 1.0, 0.15);
}

TEST(Measure, StaticAssignmentHasNoRemapCost) {
  ToolFixture f;
  // All phases on candidate 0 = one static layout.
  std::vector<int> all0(static_cast<std::size_t>(f.tool->pcfg.num_phases()), 0);
  const Measurement m = f.measure(all0);
  EXPECT_DOUBLE_EQ(m.remap_us, 0.0);
  EXPECT_GT(m.total_us, 0.0);
}

TEST(Measure, DynamicAssignmentPaysRemap) {
  ToolFixture f;
  std::vector<int> mixed(static_cast<std::size_t>(f.tool->pcfg.num_phases()), 0);
  mixed[4] = 1;  // flip one phase in the middle of the Adi time loop
  const Measurement m = f.measure(mixed);
  EXPECT_GT(m.remap_us, 0.0);
}

TEST(Measure, PhaseBreakdownSumsToTotal) {
  ToolFixture f;
  const Measurement m = f.measure(f.tool->selection.chosen);
  double sum = m.remap_us;
  for (double v : m.phase_us) sum += v;
  EXPECT_NEAR(sum, m.total_us, 1e-6 * m.total_us);
}

TEST(Measure, MoreProcsHelpParallelPrograms) {
  ToolFixture f2("shallow", 128, 2);
  ToolFixture f16("shallow", 128, 16);
  const double t2 = f2.measure(f2.tool->selection.chosen).total_us;
  const double t16 = f16.measure(f16.tool->selection.chosen).total_us;
  EXPECT_LT(t16, t2);
}

TEST(Measure, MeasurementTracksEstimateLoosely) {
  // The simulator and the estimator disagree in the details (that is the
  // point) but must stay within a factor ~2 on the tool's selection.
  ToolFixture f;
  const Measurement m = f.measure(f.tool->selection.chosen);
  const double est = f.tool->selection.total_cost_us;
  EXPECT_GT(m.total_us / est, 0.5);
  EXPECT_LT(m.total_us / est, 2.0);
}

TEST(Measure, SequentializedLayoutIsSlowest) {
  // Adi: the column layout sequentializes two phases; it must measure worse
  // than the row layout (the paper's universal Adi result).
  ToolFixture f("adi", 128, 8);
  std::vector<int> row;
  std::vector<int> col;
  for (int p = 0; p < f.tool->pcfg.num_phases(); ++p) {
    int r = 0;
    int c = 0;
    const auto& cands = f.tool->spaces[static_cast<std::size_t>(p)].candidates();
    for (std::size_t i = 0; i < cands.size(); ++i) {
      const int dim = cands[i].layout.distribution().single_distributed_dim();
      if (dim == 0) r = static_cast<int>(i);
      if (dim == 1) c = static_cast<int>(i);
    }
    row.push_back(r);
    col.push_back(c);
  }
  EXPECT_LT(f.measure(row).total_us, f.measure(col).total_us);
}

} // namespace
} // namespace al::sim
