// The 0-1 formulation of inter-dimensional alignment conflict resolution
// (paper appendix, figure 8): exact constraint structure on the figure's
// example, optimality against brute force on random CAGs, and the
// greedy-vs-optimal dominance property.
#include <gtest/gtest.h>

#include <random>

#include "cag/builder.hpp"
#include "cag/conflict.hpp"
#include "cag/greedy_resolution.hpp"
#include "cag/ilp_formulation.hpp"
#include "fortran/parser.hpp"

namespace al::cag {
namespace {

using fortran::parse_and_check;
using fortran::Program;

/// The figure-8 example: two 2-D arrays x and y with three edges forming a
/// conflict (y1 reachable from y2 through x's dims).
struct Fig8 {
  Program prog = parse_and_check("      real x(2,2), y(2,2)\n      end\n");
  NodeUniverse uni = NodeUniverse::from_program(prog);
  int x1 = uni.index(prog.symbols.lookup("x"), 0);
  int x2 = uni.index(prog.symbols.lookup("x"), 1);
  int y1 = uni.index(prog.symbols.lookup("y"), 0);
  int y2 = uni.index(prog.symbols.lookup("y"), 1);
  Cag cag{&uni};

  Fig8() {
    // Edges as in figure 8: x1-y1, x2-y1, x2-y2 (all oriented x -> y after
    // normalization).
    cag.add_edge_weight(x1, y1, 10.0, x1);
    cag.add_edge_weight(x2, y1, 4.0, x2);
    cag.add_edge_weight(x2, y2, 8.0, x2);
  }
};

TEST(AlignmentIlp, Fig8HasAConflict) {
  Fig8 f;
  EXPECT_TRUE(f.cag.has_conflict());
}

TEST(AlignmentIlp, Fig8ConstraintCounts) {
  Fig8 f;
  const AlignmentIlp ilp = formulate_alignment_ilp(f.cag, 2);
  // 4 nodes x 2 partitions + 3 edges x 2 partitions = 14 variables.
  EXPECT_EQ(ilp.model.num_variables(), 14);
  // type1: one per node.
  EXPECT_EQ(ilp.num_type1, 4);
  // type2: per array per partition.
  EXPECT_EQ(ilp.num_type2, 4);
  // Edge constraints: nonempty SRC/SINK sets x d. Sinks: y1 has SRC(x,y1)
  // with 2 edges, y2 has SRC(x,y2) with 1; sources: x1 has SINK(x1,y) with
  // 1, x2 has SINK(x2,y) with 2. That is 4 groups x 2 partitions = 8.
  EXPECT_EQ(ilp.num_edge_constraints, 8);
  EXPECT_EQ(ilp.model.num_constraints(), 4 + 4 + 8);
}

TEST(AlignmentIlp, Fig8OptimalSolution) {
  Fig8 f;
  const Resolution r = resolve_alignment(f.cag, 2);
  // Optimal: keep x1-y1 (10) and x2-y2 (8), cut x2-y1 (4).
  EXPECT_DOUBLE_EQ(r.satisfied_weight, 18.0);
  EXPECT_DOUBLE_EQ(r.cut_weight, 4.0);
  EXPECT_EQ(r.part_of[static_cast<std::size_t>(f.x1)],
            r.part_of[static_cast<std::size_t>(f.y1)]);
  EXPECT_EQ(r.part_of[static_cast<std::size_t>(f.x2)],
            r.part_of[static_cast<std::size_t>(f.y2)]);
  EXPECT_NE(r.part_of[static_cast<std::size_t>(f.x1)],
            r.part_of[static_cast<std::size_t>(f.x2)]);
  // The surviving info joins exactly the kept pairs.
  EXPECT_TRUE(r.info.same(f.x1, f.y1));
  EXPECT_TRUE(r.info.same(f.x2, f.y2));
  EXPECT_FALSE(r.info.same(f.x1, f.x2));
  EXPECT_GT(r.ilp_variables, 0);
  EXPECT_GT(r.ilp_constraints, 0);
}

TEST(AlignmentIlp, ConflictFreeCagSkipsTheIlp) {
  Fig8 f;
  Cag free(&f.uni);
  free.add_edge_weight(f.x1, f.y1, 5.0, f.x1);
  const Resolution r = resolve_alignment(free, 2);
  EXPECT_EQ(r.ilp_variables, 0);  // no ILP was needed
  EXPECT_DOUBLE_EQ(r.satisfied_weight, 5.0);
  EXPECT_DOUBLE_EQ(r.cut_weight, 0.0);
}

TEST(AlignmentIlp, SatisfiedSubgraphDropsCutEdges) {
  Fig8 f;
  const Resolution r = resolve_alignment(f.cag, 2);
  const Cag survived = satisfied_subgraph(f.cag, r);
  EXPECT_EQ(survived.edges().size(), 2u);
  EXPECT_FALSE(survived.has_conflict());
  EXPECT_DOUBLE_EQ(survived.total_weight(), 18.0);
}

// ---------------------------------------------------------------------------
// Brute-force cross-check on random conflicted CAGs.
// ---------------------------------------------------------------------------

/// Exhaustive optimum over all d-partitionings via node-partition labels.
double brute_force_best(const Cag& g, int d) {
  const std::vector<int> nodes = [&] {
    std::vector<int> out;
    for (int a : g.touched_arrays()) {
      for (int n : g.universe().nodes_of(a)) out.push_back(n);
    }
    return out;
  }();
  const int n = static_cast<int>(nodes.size());
  std::vector<int> label(static_cast<std::size_t>(n), 0);
  double best = -1.0;
  for (;;) {
    // Check array-distinctness.
    bool ok = true;
    for (int i = 0; i < n && ok; ++i) {
      for (int j = i + 1; j < n && ok; ++j) {
        if (g.universe().array_of(nodes[static_cast<std::size_t>(i)]) ==
                g.universe().array_of(nodes[static_cast<std::size_t>(j)]) &&
            label[static_cast<std::size_t>(i)] == label[static_cast<std::size_t>(j)])
          ok = false;
      }
    }
    if (ok) {
      double w = 0.0;
      auto label_of = [&](int node) {
        for (int i = 0; i < n; ++i) {
          if (nodes[static_cast<std::size_t>(i)] == node)
            return label[static_cast<std::size_t>(i)];
        }
        return -1;
      };
      for (const CagEdge& e : g.edges()) {
        if (label_of(e.u) == label_of(e.v)) w += e.weight;
      }
      best = std::max(best, w);
    }
    // Next label vector.
    int k = 0;
    while (k < n) {
      if (++label[static_cast<std::size_t>(k)] < d) break;
      label[static_cast<std::size_t>(k)] = 0;
      ++k;
    }
    if (k == n) break;
  }
  return best;
}

class AlignmentIlpRandom : public ::testing::TestWithParam<int> {};

TEST_P(AlignmentIlpRandom, MatchesBruteForce) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  for (int trial = 0; trial < 10; ++trial) {
    const int narrays = 2 + static_cast<int>(rng() % 3);
    std::string src = "      program p\n";
    for (int a = 0; a < narrays; ++a)
      src += "      real q" + std::to_string(a) + "(4,4)\n";
    src += "      end\n";
    Program prog = parse_and_check(src);
    NodeUniverse uni = NodeUniverse::from_program(prog);
    Cag g(&uni);
    const int edges = 3 + static_cast<int>(rng() % 5);
    for (int e = 0; e < edges; ++e) {
      const int a = static_cast<int>(rng() % static_cast<unsigned>(narrays));
      int b = static_cast<int>(rng() % static_cast<unsigned>(narrays));
      if (a == b) b = (b + 1) % narrays;
      g.add_edge_weight(uni.index(a, static_cast<int>(rng() % 2)),
                        uni.index(b, static_cast<int>(rng() % 2)),
                        1.0 + static_cast<double>(rng() % 50),
                        uni.index(a, 0));
    }
    const Resolution ilp = resolve_alignment(g, 2);
    const double brute = brute_force_best(g, 2);
    EXPECT_NEAR(ilp.satisfied_weight, brute, 1e-6) << "trial " << trial;
    // Greedy never beats the optimum.
    const Resolution greedy = resolve_alignment_greedy(g, 2);
    EXPECT_LE(greedy.satisfied_weight, ilp.satisfied_weight + 1e-9);
    EXPECT_NEAR(greedy.satisfied_weight + greedy.cut_weight,
                ilp.satisfied_weight + ilp.cut_weight, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlignmentIlpRandom, ::testing::Values(7, 13, 29, 31));

TEST(AlignmentIlp, BudgetHitDegradesToGreedyNotAssert) {
  // A 1-node budget on the fig-8 conflict: the exact solve cannot finish,
  // so resolution must degrade gracefully -- valid partitioning, provenance
  // recorded -- instead of asserting on a non-Optimal status.
  Fig8 f;
  ilp::MipOptions mip;
  mip.max_nodes = 1;
  const Resolution r = resolve_alignment(f.cag, 2, mip);
  // Whatever path ran, the partitioning must be legal: both dims of each
  // array in distinct partitions, every node labeled in [0, 2).
  for (int node : {f.x1, f.x2, f.y1, f.y2}) {
    const int part = r.part_of[static_cast<std::size_t>(node)];
    EXPECT_GE(part, 0);
    EXPECT_LT(part, 2);
  }
  EXPECT_NE(r.part_of[static_cast<std::size_t>(f.x1)],
            r.part_of[static_cast<std::size_t>(f.x2)]);
  EXPECT_NE(r.part_of[static_cast<std::size_t>(f.y1)],
            r.part_of[static_cast<std::size_t>(f.y2)]);
  // Satisfied + cut always accounts for the full edge weight.
  EXPECT_NEAR(r.satisfied_weight + r.cut_weight, 22.0, 1e-9);
  // Provenance: either the budget sufficed (Optimal root) or the fallback
  // is flagged; never an Optimal status with a fallback flag.
  if (r.solver_status == ilp::SolveStatus::Optimal) {
    EXPECT_FALSE(r.greedy_fallback);
  } else {
    EXPECT_TRUE(r.greedy_fallback || ilp::has_solution(r.solver_status));
  }
  // Greedy (= the fallback engine) finds the optimum on fig-8, so even a
  // degraded resolution satisfies the full 18.
  EXPECT_DOUBLE_EQ(r.satisfied_weight, 18.0);
}

TEST(AlignmentIlp, TinyDeadlineDegradesGracefully) {
  Fig8 f;
  ilp::MipOptions mip;
  mip.deadline_ms = 1e-6;
  const Resolution r = resolve_alignment(f.cag, 2, mip);
  EXPECT_NEAR(r.satisfied_weight + r.cut_weight, 22.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.satisfied_weight, 18.0);
}

TEST(AlignmentIlp, DefaultBudgetsStayExact) {
  Fig8 f;
  const Resolution r = resolve_alignment(f.cag, 2, ilp::MipOptions{});
  EXPECT_EQ(r.solver_status, ilp::SolveStatus::Optimal);
  EXPECT_FALSE(r.greedy_fallback);
  EXPECT_DOUBLE_EQ(r.satisfied_weight, 18.0);
}

TEST(GreedyResolution, HeaviestEdgeWins) {
  Fig8 f;
  const Resolution r = resolve_alignment_greedy(f.cag, 2);
  // Greedy keeps 10 first, then 8 (4 conflicts with both) -> optimal here.
  EXPECT_DOUBLE_EQ(r.satisfied_weight, 18.0);
  EXPECT_DOUBLE_EQ(r.cut_weight, 4.0);
}

} // namespace
} // namespace al::cag
