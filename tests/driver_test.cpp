// End-to-end driver tests: the full pipeline on all four corpus programs
// (phase counts, class structure, selection sanity), pinned layouts, and
// HPF directive emission.
#include <gtest/gtest.h>

#include <limits>

#include "corpus/corpus.hpp"
#include "driver/emit.hpp"
#include "driver/testcase.hpp"
#include "driver/tool.hpp"
#include "support/text.hpp"

namespace al::driver {
namespace {

std::unique_ptr<ToolResult> run(const char* prog, long n, int procs,
                                ToolOptions opts = {}) {
  corpus::TestCase c{prog, n,
                     std::string(prog) == "shallow" ? corpus::Dtype::Real
                                                    : corpus::Dtype::DoublePrecision,
                     procs};
  opts.procs = procs;
  return run_tool(corpus::source_for(c), opts);
}

TEST(Driver, AdiStructure) {
  auto r = run("adi", 64, 8);
  EXPECT_EQ(r->pcfg.num_phases(), 9);             // paper: 9 phases
  EXPECT_EQ(r->alignment.partition.classes.size(), 1u);  // no conflicts
  EXPECT_TRUE(r->alignment.ilp_resolutions.empty());
  EXPECT_EQ(r->templ.rank, 2);
  EXPECT_EQ(r->distributions.size(), 2u);
}

TEST(Driver, ErlebacherStructure) {
  auto r = run("erlebacher", 32, 8);
  EXPECT_EQ(r->pcfg.num_phases(), 40);  // paper: 40 phases (inlined)
  EXPECT_EQ(r->alignment.partition.classes.size(), 1u);
  EXPECT_EQ(r->templ.rank, 3);
  EXPECT_EQ(r->distributions.size(), 3u);
  // Four 3-D arrays aligned canonically.
  EXPECT_EQ(r->program.array_symbols().size(), 4u);
}

TEST(Driver, TomcatvStructure) {
  auto r = run("tomcatv", 64, 8);
  EXPECT_EQ(r->pcfg.num_phases(), 17);  // paper: 17 phases
  // Two conflicting classes; two-entry alignment search spaces.
  EXPECT_EQ(r->alignment.partition.classes.size(), 2u);
  EXPECT_FALSE(r->alignment.ilp_resolutions.empty());
  for (const auto& space : r->alignment.phase_spaces) {
    EXPECT_GE(space.size(), 1u);
    EXPECT_LE(space.size(), 2u);
  }
  // Candidate layout spaces: at most 4 (2 alignments x 2 distributions),
  // some collapse to 2 (paper, section 4).
  bool saw_four = false;
  bool saw_two = false;
  for (const auto& space : r->spaces) {
    EXPECT_GE(space.size(), 2u);
    EXPECT_LE(space.size(), 4u);
    if (space.size() == 4) saw_four = true;
    if (space.size() == 2) saw_two = true;
  }
  EXPECT_TRUE(saw_four);
  EXPECT_TRUE(saw_two);
}

TEST(Driver, ShallowStructure) {
  auto r = run("shallow", 128, 8);
  EXPECT_EQ(r->pcfg.num_phases(), 28);  // paper: 28 phases
  EXPECT_EQ(r->alignment.partition.classes.size(), 1u);
}

TEST(Driver, SelectionIsValid) {
  auto r = run("adi", 64, 8);
  ASSERT_EQ(r->selection.chosen.size(), 9u);
  for (int p = 0; p < 9; ++p) {
    const int c = r->selection.chosen[static_cast<std::size_t>(p)];
    EXPECT_GE(c, 0);
    EXPECT_LT(c, static_cast<int>(r->spaces[static_cast<std::size_t>(p)].size()));
  }
  EXPECT_GT(r->selection.total_cost_us, 0.0);
  EXPECT_NEAR(r->selection.total_cost_us,
              r->selection.node_cost_us + r->selection.remap_cost_us, 1e-6);
}

TEST(Driver, AdiPicksRowLayout) {
  // The figure-3 headline: Adi's tool choice is the static row-wise layout.
  auto r = run("adi", 512, 16);
  for (int p = 0; p < r->pcfg.num_phases(); ++p) {
    EXPECT_EQ(r->chosen_layout(p).distribution().single_distributed_dim(), 0)
        << "phase " << p;
  }
  EXPECT_FALSE(r->is_dynamic());
}

TEST(Driver, TomcatvPicksColumnDistribution) {
  // Paper: "In all cases the prototype tool selected the column-wise data
  // layout." Column-wise for the MESH arrays x/y means their SECOND array
  // dimension is the distributed one (checked through the alignment, which
  // makes the assertion robust to the orientation/distribution symmetry).
  auto r = run("tomcatv", 128, 16);
  const int x = r->program.symbols.lookup("x");
  const int y = r->program.symbols.lookup("y");
  for (int p = 0; p < r->pcfg.num_phases(); ++p) {
    if (r->pcfg.phase(p).references_array(x)) {
      EXPECT_EQ(r->chosen_layout(p).distributed_array_dim(x, 2), 1) << "phase " << p;
    }
    if (r->pcfg.phase(p).references_array(y)) {
      EXPECT_EQ(r->chosen_layout(p).distributed_array_dim(y, 2), 1) << "phase " << p;
    }
  }
}

TEST(Driver, ShallowPicksColumnDistribution) {
  auto r = run("shallow", 128, 16);
  const int pa = r->program.symbols.lookup("p");
  const int u = r->program.symbols.lookup("u");
  for (int ph = 0; ph < r->pcfg.num_phases(); ++ph) {
    if (r->pcfg.phase(ph).references_array(pa)) {
      EXPECT_EQ(r->chosen_layout(ph).distributed_array_dim(pa, 2), 1) << "phase " << ph;
    }
    if (r->pcfg.phase(ph).references_array(u)) {
      EXPECT_EQ(r->chosen_layout(ph).distributed_array_dim(u, 2), 1) << "phase " << ph;
    }
  }
}

TEST(Driver, BadNumericFlagValuesRejected) {
  // The CLI's --procs/--threads share this parser; atoi's old behavior
  // ("16x" -> 16, "abc" -> 0) must be gone, and failures must leave the
  // destination untouched.
  constexpr int kMax = std::numeric_limits<int>::max();
  int out = -1;
  EXPECT_FALSE(parse_int("16x", 1, kMax, out));
  EXPECT_FALSE(parse_int("", 1, kMax, out));
  EXPECT_FALSE(parse_int("abc", 1, kMax, out));
  EXPECT_FALSE(parse_int("0", 1, kMax, out));     // below the --procs minimum
  EXPECT_FALSE(parse_int("1 2", 1, kMax, out));
  EXPECT_FALSE(parse_int("99999999999999999999", 1, kMax, out));
  EXPECT_EQ(out, -1);  // untouched through every failure
  EXPECT_TRUE(parse_int("16", 1, kMax, out));
  EXPECT_EQ(out, 16);
  EXPECT_TRUE(parse_int(" 8 ", 1, kMax, out));  // trimmed
  EXPECT_EQ(out, 8);
  EXPECT_TRUE(parse_int("0", 0, kMax, out));  // 0 is valid for --threads
  EXPECT_EQ(out, 0);
  long lout = -1;
  EXPECT_FALSE(parse_long("12cols", 1, 1 << 20, lout));
  EXPECT_TRUE(parse_long("4096", 1, 1 << 20, lout));
  EXPECT_EQ(lout, 4096);
}

TEST(Driver, NoPhasesThrows) {
  EXPECT_THROW((void)run_tool("      x = 1\n      end\n"), FatalError);
}

TEST(Driver, ParseErrorThrows) {
  EXPECT_THROW((void)run_tool("      do i = \n      end\n"), FatalError);
}

TEST(Driver, PinnedPhaseIsHonored) {
  // Pin phase 0 to the column layout: its space must contain exactly that.
  corpus::TestCase c{"adi", 64, corpus::Dtype::Real, 8};
  ToolOptions opts;
  opts.procs = 8;
  layout::Layout pinned(layout::Alignment{}, layout::Distribution::block_1d(2, 1, 8));
  opts.pinned_phases.emplace_back(0, pinned);
  auto r = run_tool(corpus::source_for(c), opts);
  ASSERT_EQ(r->spaces[0].size(), 1u);
  EXPECT_EQ(r->spaces[0].candidates()[0].layout, pinned);
  EXPECT_EQ(r->selection.chosen[0], 0);
  // The rest of the program still has full spaces.
  EXPECT_GE(r->spaces[1].size(), 2u);
}

TEST(Driver, EvaluateAlternativesShape) {
  auto r = run("adi", 64, 8);
  const CaseReport rep = evaluate_alternatives(*r);
  EXPECT_GE(rep.alternatives.size(), 3u);  // row, column, dynamic
  EXPECT_GE(rep.tool_index, 0);
  EXPECT_TRUE(rep.alternatives[static_cast<std::size_t>(rep.tool_index)].is_tool_choice);
  for (const Alternative& a : rep.alternatives) {
    EXPECT_GT(a.est_us, 0.0);
    EXPECT_GT(a.meas_us, 0.0);
    EXPECT_EQ(a.assignment.size(), 9u);
  }
  EXPECT_GE(rep.loss_fraction, 0.0);
  const std::string table = report_table(rep);
  EXPECT_NE(table.find("tool"), std::string::npos);
  EXPECT_NE(table.find("estimated"), std::string::npos);
}

TEST(Emit, InitialDirectives) {
  auto r = run("adi", 64, 8);
  const std::string d = emit_initial_directives(*r);
  EXPECT_NE(d.find("!HPF$ TEMPLATE T(64,64)"), std::string::npos);
  EXPECT_NE(d.find("!HPF$ PROCESSORS P(8)"), std::string::npos);
  EXPECT_NE(d.find("!HPF$ ALIGN x"), std::string::npos);
  EXPECT_NE(d.find("!HPF$ DISTRIBUTE T"), std::string::npos);
  EXPECT_NE(d.find("ONTO P"), std::string::npos);
}

TEST(Emit, AnnotatedProgramListsPhases) {
  auto r = run("adi", 64, 8);
  const std::string s = emit_annotated_program(*r);
  EXPECT_NE(s.find("program adi"), std::string::npos);
  EXPECT_NE(s.find("phase 0"), std::string::npos);
  EXPECT_NE(s.find("phase 8"), std::string::npos);
  EXPECT_NE(s.find("do "), std::string::npos);
}

TEST(Emit, DynamicSelectionEmitsRedistributes) {
  // Erlebacher's tool choice is dynamic: REALIGN/REDISTRIBUTE must appear.
  auto r = run("erlebacher", 64, 32);
  ASSERT_TRUE(r->is_dynamic());
  const std::string s = emit_annotated_program(*r);
  const bool has_remap = s.find("!HPF$ REDISTRIBUTE") != std::string::npos ||
                         s.find("!HPF$ REALIGN") != std::string::npos;
  EXPECT_TRUE(has_remap);
}

} // namespace
} // namespace al::driver
