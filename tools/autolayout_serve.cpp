// The layout assistant as a service (DESIGN.md section 11).
//
//   autolayout_serve --batch requests.ndjson        one-shot batch mode
//   autolayout_serve --port 7461                    NDJSON-over-TCP daemon
//
//   --batch FILE           read request lines from FILE ("-" = stdin) and
//                          exit when done; responses go to --out
//   --port N               listen on 127.0.0.1:N (0 = ephemeral; the bound
//                          port is printed to stderr)
//   --shards N             fork N shard processes that share the port via
//                          SO_REUSEPORT; a supervisor restarts crashed
//                          shards and aggregates their summaries (default 1
//                          = single-process daemon)
//   --max-restarts N       per-shard crash-restart budget     (default 3)
//   --workers N            request-executing threads PER SHARD; 0 = one per
//                          usable CPU (the default; affinity-clamped on
//                          pinned containers)
//   --queue N              admission queue capacity; a full queue answers
//                          "rejected: queue full"           (default 64)
//   --grace-ms N           drain budget after SIGINT/SIGTERM, per shard
//                          (default 5000)
//   --listen-backlog N     accept-queue depth handed to listen(2)
//                          (default 64)
//   --reorder-cap N        per-connection bound on out-of-order responses
//                          parked for pipelined ordering    (default 256)
//   --max-request-bytes N  per-line size cap                (default 4 MiB)
//   --no-run-cache         disable the whole-run result cache
//   --no-shared-cache      keep shard run caches process-local (skip the
//                          cross-shard shm segment)
//   --shm-slots N          cross-shard cache slot count     (default 1024)
//   --shm-cell-bytes N     payload bytes per slot           (default 48 KiB)
//   --run-cache-entries N  run-cache entry cap (0 = unbounded; default 1024)
//   --run-cache-bytes N    run-cache byte cap (0 = unbounded; default 64 MiB)
//   --out FILE             batch responses ("-" = stdout, the default)
//   --summary FILE         final service summary JSON ("-" = stderr, the
//                          default; always emitted). With --shards > 1 this
//                          is the "autolayout.fleet_summary" aggregate.
//
// Wire format: one "autolayout.request" v1 JSON document per line in, one
// "autolayout.response" v1 document per line out (see src/service/protocol).
// SIGINT/SIGTERM stop the listener, drain in-flight work under --grace-ms,
// and answer anything still queued with "rejected: shutting down".
//
// Exit status: 0 on clean shutdown / completed batch, 1 on setup or I/O
// errors. Per-request failures are responses, not exit codes.
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>

#include "service/server.hpp"
#include "service/shard.hpp"
#include "support/text.hpp"

namespace {

al::service::Server* g_server = nullptr;
al::service::ShardSupervisor* g_supervisor = nullptr;

/// Only an atomic store happens behind this call -- async-signal-safe.
void on_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
  if (g_supervisor != nullptr) g_supervisor->request_stop();
}

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--batch FILE | --port N) [--shards N] [--workers N]\n"
               "          [--queue N] [--grace-ms N] [--max-request-bytes N]\n"
               "          [--listen-backlog N] [--reorder-cap N] [--out FILE]\n"
               "          [--no-run-cache] [--run-cache-entries N]\n"
               "          [--run-cache-bytes N] [--no-shared-cache]\n"
               "          [--shm-slots N] [--shm-cell-bytes N]\n"
               "          [--max-restarts N] [--summary FILE]\n",
               argv0);
}

} // namespace

int main(int argc, char** argv) {
  using namespace al;
  service::ServerOptions opts;
  service::ShardOptions shard_opts;
  int shards = 1;
  std::string batch_file;
  std::string out_file = "-";
  std::string summary_file = "-";
  bool daemon = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0], flag);
        std::exit(1);
      }
      return argv[++i];
    };
    auto int_flag = [&](const char* flag, int min, int& out) {
      const char* v = need_value(flag);
      if (!parse_int(v, min, std::numeric_limits<int>::max(), out)) {
        std::fprintf(stderr, "%s: bad value for %s: '%s'\n", argv[0], flag, v);
        std::exit(1);
      }
    };
    if (a == "--batch") {
      batch_file = need_value("--batch");
    } else if (a == "--port") {
      int port = 0;
      const char* v = need_value("--port");
      if (!parse_int(v, 0, 65535, port)) {
        std::fprintf(stderr, "%s: bad port '%s'\n", argv[0], v);
        return 1;
      }
      opts.port = port;
      daemon = true;
    } else if (a == "--shards") {
      int_flag("--shards", 1, shards);
    } else if (a == "--max-restarts") {
      int_flag("--max-restarts", 0, shard_opts.max_restarts_per_shard);
    } else if (a == "--listen-backlog") {
      int_flag("--listen-backlog", 1, opts.listen_backlog);
    } else if (a == "--reorder-cap") {
      int cap = 0;
      int_flag("--reorder-cap", 1, cap);
      opts.reorder_cap = static_cast<std::size_t>(cap);
    } else if (a == "--no-shared-cache") {
      shard_opts.shared_cache = false;
    } else if (a == "--shm-slots") {
      int slots = 0;
      int_flag("--shm-slots", 1, slots);
      shard_opts.shm.slots = static_cast<std::size_t>(slots);
    } else if (a == "--shm-cell-bytes") {
      int bytes = 0;
      int_flag("--shm-cell-bytes", 256, bytes);
      shard_opts.shm.cell_bytes = static_cast<std::size_t>(bytes);
    } else if (a == "--workers") {
      // 0 is valid: "auto", one worker per usable CPU.
      int_flag("--workers", 0, opts.workers);
    } else if (a == "--queue") {
      int capacity = 0;
      int_flag("--queue", 1, capacity);
      opts.queue_capacity = static_cast<std::size_t>(capacity);
    } else if (a == "--grace-ms") {
      long grace = 0;
      const char* v = need_value("--grace-ms");
      if (!parse_long(v, 0, std::numeric_limits<long>::max(), grace)) {
        std::fprintf(stderr, "%s: bad grace '%s'\n", argv[0], v);
        return 1;
      }
      opts.grace_ms = grace;
    } else if (a == "--max-request-bytes") {
      int bytes = 0;
      int_flag("--max-request-bytes", 1, bytes);
      opts.max_request_bytes = static_cast<std::size_t>(bytes);
    } else if (a == "--no-run-cache") {
      opts.run_cache = false;
    } else if (a == "--run-cache-entries") {
      long n = 0;
      const char* v = need_value("--run-cache-entries");
      // 0 is valid (unbounded), so the strict parse carries the rejection.
      if (!parse_long(v, 0, std::numeric_limits<long>::max(), n)) {
        std::fprintf(stderr, "%s: bad run-cache entry cap '%s'\n", argv[0], v);
        return 1;
      }
      opts.cache.max_entries = static_cast<std::size_t>(n);
    } else if (a == "--run-cache-bytes") {
      long n = 0;
      const char* v = need_value("--run-cache-bytes");
      if (!parse_long(v, 0, std::numeric_limits<long>::max(), n)) {
        std::fprintf(stderr, "%s: bad run-cache byte cap '%s'\n", argv[0], v);
        return 1;
      }
      opts.cache.max_bytes = static_cast<std::size_t>(n);
    } else if (a == "--out") {
      out_file = need_value("--out");
    } else if (a == "--summary") {
      summary_file = need_value("--summary");
    } else if (a == "-h" || a == "--help") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], a.c_str());
      usage(argv[0]);
      return 1;
    }
  }
  if (!daemon && batch_file.empty()) {
    usage(argv[0]);
    return 1;
  }
  if (daemon && !batch_file.empty()) {
    std::fprintf(stderr, "%s: --batch and --port are mutually exclusive\n",
                 argv[0]);
    return 1;
  }
  if (!daemon && shards > 1) {
    std::fprintf(stderr, "%s: --shards requires --port\n", argv[0]);
    return 1;
  }

  if (daemon && shards > 1) {
    // Sharded fleet: the supervisor owns the port and the shm segment; each
    // forked child runs a full Server bound to the same port.
    shard_opts.shards = shards;
    shard_opts.server = opts;
    service::ShardSupervisor supervisor(shard_opts);
    g_supervisor = &supervisor;
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    if (!supervisor.start()) return 1;
    std::fprintf(stderr,
                 "%s: listening on 127.0.0.1:%d (%d shards, queue %zu, "
                 "run cache %s)\n",
                 argv[0], supervisor.port(), shards, opts.queue_capacity,
                 opts.run_cache ? "on" : "off");
    const int rc = supervisor.run();
    const std::string summary = supervisor.fleet_summary_json();
    if (summary_file == "-") {
      std::fputs(summary.c_str(), stderr);
    } else {
      std::ofstream sf(summary_file);
      if (!sf) {
        std::fprintf(stderr, "%s: cannot write '%s'\n", argv[0],
                     summary_file.c_str());
        return 1;
      }
      sf << summary;
    }
    g_supervisor = nullptr;
    return rc;
  }

  service::Server server(opts);
  g_server = &server;
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  int rc = 0;
  if (daemon) {
    if (!server.start()) return 1;
    std::fprintf(stderr,
                 "%s: listening on 127.0.0.1:%d (%d workers, queue %zu, "
                 "run cache %s)\n",
                 argv[0], server.port(), server.workers(), opts.queue_capacity,
                 opts.run_cache ? "on" : "off");
    server.wait();
  } else {
    std::ifstream in_file;
    std::istream* in = &std::cin;
    if (batch_file != "-") {
      in_file.open(batch_file);
      if (!in_file) {
        std::fprintf(stderr, "%s: cannot open '%s'\n", argv[0], batch_file.c_str());
        return 1;
      }
      in = &in_file;
    }
    std::ofstream out_stream;
    std::ostream* out = &std::cout;
    if (out_file != "-") {
      out_stream.open(out_file);
      if (!out_stream) {
        std::fprintf(stderr, "%s: cannot write '%s'\n", argv[0], out_file.c_str());
        return 1;
      }
      out = &out_stream;
    }
    rc = server.run_batch(*in, *out);
  }

  const std::string summary = server.summary().json();
  if (summary_file == "-") {
    std::fputs(summary.c_str(), stderr);
  } else {
    std::ofstream sf(summary_file);
    if (!sf) {
      std::fprintf(stderr, "%s: cannot write '%s'\n", argv[0], summary_file.c_str());
      return 1;
    }
    sf << summary;
  }
  g_server = nullptr;
  return rc;
}
