// Load generator / client for autolayout_serve's NDJSON-over-TCP daemon.
//
//   autolayout_client --port N [options]
//
//   --port N            server port on 127.0.0.1 (required)
//   --file FILE         send request lines from FILE ("-" = stdin) instead
//                       of generating them
//   --corpus LIST       comma-separated programs to generate requests for
//                       (default "adi,erlebacher,tomcatv,shallow")
//   --n SIZE            generated problem size               (default 32)
//   --procs N           generated processor count            (default 4)
//   --repeat K          repetitions of the corpus mix        (default 1)
//   --connections C     parallel TCP connections             (default 1)
//   --pipeline D        max in-flight requests per connection (default 1);
//                       the server answers each connection in request
//                       order, so response i always matches request i
//   --deadline-ms N     queue_deadline_ms stamped on generated requests
//   --out FILE          dump raw response lines ("-" = stdout)
//
// Requests are split round-robin over the connections; each connection
// keeps up to --pipeline requests in flight, counts response statuses, and
// measures per-request latency (send of request i to receipt of response i
// -- valid because the server guarantees per-connection request order).
// The final line on stdout is a one-line JSON summary:
//   {"schema":"autolayout.client_summary", "sent":..., "ok":...,
//    "rejected":..., "infeasible":..., "errors":..., "wall_ms":...,
//    "throughput_rps":..., "p50_ms":..., "p95_ms":..., "p99_ms":...}
//
// Exit status: 0 when every response arrived (whatever its status), 1 on
// usage/connect/protocol failures.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <limits>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "corpus/corpus.hpp"
#include "service/protocol.hpp"
#include "support/json.hpp"
#include "support/json_parse.hpp"
#include "support/text.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct Tally {
  std::uint64_t sent = 0, ok = 0, rejected = 0, infeasible = 0, errors = 0;
  std::vector<double> latencies_ms;
  bool transport_failed = false;
};

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double rank = std::ceil(p / 100.0 * static_cast<double>(v.size()));
  return v[static_cast<std::size_t>(std::clamp(
             rank, 1.0, static_cast<double>(v.size()))) - 1];
}

int connect_loopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads one '\n'-terminated line (without the terminator). False on EOF
/// or a transport error.
bool read_line(int fd, std::string& buffer, std::string& line) {
  for (;;) {
    const std::size_t nl = buffer.find('\n');
    if (nl != std::string::npos) {
      line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      return true;
    }
    char chunk[16 * 1024];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n == 0) return false;
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

/// One connection's work: keep up to `pipeline` requests in flight and
/// match responses to requests POSITIONALLY -- the server answers each
/// connection strictly in request order, so response i is request i's.
/// pipeline=1 degenerates to the classic send/await round trip.
void drive_connection(int port, const std::vector<std::string>& requests,
                      int pipeline, Tally& tally, std::mutex& out_mutex,
                      std::ostream* out) {
  const int fd = connect_loopback(port);
  if (fd < 0) {
    tally.transport_failed = true;
    return;
  }
  std::string buffer, line;
  std::deque<Clock::time_point> sent_at;  // front = oldest in-flight request
  std::size_t next = 0;
  while (!sent_at.empty() || next < requests.size()) {
    // Fill the window before blocking on the next response.
    while (next < requests.size() &&
           sent_at.size() < static_cast<std::size_t>(pipeline)) {
      if (!send_all(fd, requests[next])) {
        tally.transport_failed = true;
        ::close(fd);
        return;
      }
      sent_at.push_back(Clock::now());
      ++next;
      ++tally.sent;
    }
    if (!read_line(fd, buffer, line)) {
      tally.transport_failed = true;
      break;
    }
    tally.latencies_ms.push_back(std::chrono::duration<double, std::milli>(
                                     Clock::now() - sent_at.front())
                                     .count());
    sent_at.pop_front();
    if (out != nullptr) {
      std::lock_guard lock(out_mutex);
      *out << line << '\n';
    }
    al::support::JsonValue doc;
    std::string parse_error;
    if (!al::support::JsonValue::parse(line, doc, parse_error) ||
        doc.find("status") == nullptr) {
      ++tally.errors;
      continue;
    }
    const std::string_view status = doc.find("status")->as_string();
    if (status == "ok") {
      ++tally.ok;
    } else if (status == "rejected") {
      ++tally.rejected;
    } else if (status == "infeasible") {
      ++tally.infeasible;
    } else {
      ++tally.errors;
    }
  }
  ::close(fd);
}

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port N [--file FILE | --corpus LIST] [--n SIZE]\n"
               "          [--procs N] [--repeat K] [--connections C]\n"
               "          [--pipeline D] [--deadline-ms N] [--out FILE]\n",
               argv0);
}

} // namespace

int main(int argc, char** argv) {
  using namespace al;
  int port = 0;
  std::string file;
  std::string corpus_list = "adi,erlebacher,tomcatv,shallow";
  long n = 32;
  int procs = 4;
  int repeat = 1;
  int connections = 1;
  int pipeline = 1;
  long deadline_ms = 0;
  std::string out_file;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0], flag);
        std::exit(1);
      }
      return argv[++i];
    };
    bool bad = false;
    if (a == "--port") {
      bad = !parse_int(need_value("--port"), 1, 65535, port);
    } else if (a == "--file") {
      file = need_value("--file");
    } else if (a == "--corpus") {
      corpus_list = need_value("--corpus");
    } else if (a == "--n") {
      bad = !parse_long(need_value("--n"), 8, 4096, n);
    } else if (a == "--procs") {
      bad = !parse_int(need_value("--procs"), 1, 1 << 20, procs);
    } else if (a == "--repeat") {
      bad = !parse_int(need_value("--repeat"), 1, 1 << 20, repeat);
    } else if (a == "--connections") {
      bad = !parse_int(need_value("--connections"), 1, 1024, connections);
    } else if (a == "--pipeline") {
      bad = !parse_int(need_value("--pipeline"), 1, 1 << 16, pipeline);
    } else if (a == "--deadline-ms") {
      bad = !parse_long(need_value("--deadline-ms"), 1,
                        std::numeric_limits<long>::max(), deadline_ms);
    } else if (a == "--out") {
      out_file = need_value("--out");
    } else if (a == "-h" || a == "--help") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], a.c_str());
      usage(argv[0]);
      return 1;
    }
    if (bad) {
      std::fprintf(stderr, "%s: bad value for %s\n", argv[0], a.c_str());
      return 1;
    }
  }
  if (port == 0) {
    usage(argv[0]);
    return 1;
  }

  // Assemble the request lines.
  std::vector<std::string> requests;
  if (!file.empty()) {
    std::ifstream in_file;
    std::istream* in = &std::cin;
    if (file != "-") {
      in_file.open(file);
      if (!in_file) {
        std::fprintf(stderr, "%s: cannot open '%s'\n", argv[0], file.c_str());
        return 1;
      }
      in = &in_file;
    }
    std::string line;
    while (std::getline(*in, line))
      if (!line.empty()) requests.push_back(line + '\n');
  } else {
    std::vector<std::string> programs;
    for (std::string_view name : split(corpus_list, ','))
      programs.emplace_back(trim(name));
    int id = 0;
    for (int r = 0; r < repeat; ++r) {
      for (const std::string& prog : programs) {
        corpus::TestCase c{prog, n,
                           prog == "shallow" ? corpus::Dtype::Real
                                             : corpus::Dtype::DoublePrecision,
                           procs};
        std::ostringstream os;
        support::JsonWriter w(os, /*indent_width=*/-1);
        w.begin_object();
        w.kv("schema", service::kRequestSchema);
        w.kv("schema_version", service::kProtocolVersion);
        w.kv("id", "c" + std::to_string(id++));
        w.kv("source", corpus::source_for(c));
        if (deadline_ms > 0) w.kv("queue_deadline_ms", deadline_ms);
        w.key("options").begin_object();
        w.kv("procs", procs);
        w.end_object();
        w.end_object();
        requests.push_back(os.str());
      }
    }
  }
  if (requests.empty()) {
    std::fprintf(stderr, "%s: nothing to send\n", argv[0]);
    return 1;
  }

  std::ofstream out_stream;
  std::ostream* out = nullptr;
  if (!out_file.empty()) {
    if (out_file == "-") {
      out = &std::cout;
    } else {
      out_stream.open(out_file);
      if (!out_stream) {
        std::fprintf(stderr, "%s: cannot write '%s'\n", argv[0], out_file.c_str());
        return 1;
      }
      out = &out_stream;
    }
  }

  // Round-robin split over the connections, one thread each.
  connections = std::min<int>(connections, static_cast<int>(requests.size()));
  std::vector<std::vector<std::string>> shards(
      static_cast<std::size_t>(connections));
  for (std::size_t i = 0; i < requests.size(); ++i)
    shards[i % static_cast<std::size_t>(connections)].push_back(
        std::move(requests[i]));

  std::vector<Tally> tallies(static_cast<std::size_t>(connections));
  std::mutex out_mutex;
  const Clock::time_point t0 = Clock::now();
  {
    std::vector<std::jthread> threads;
    threads.reserve(static_cast<std::size_t>(connections));
    for (int c = 0; c < connections; ++c) {
      threads.emplace_back([&, c] {
        drive_connection(port, shards[static_cast<std::size_t>(c)], pipeline,
                         tallies[static_cast<std::size_t>(c)], out_mutex, out);
      });
    }
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

  Tally total;
  std::vector<double> latencies;
  for (const Tally& t : tallies) {
    total.sent += t.sent;
    total.ok += t.ok;
    total.rejected += t.rejected;
    total.infeasible += t.infeasible;
    total.errors += t.errors;
    total.transport_failed = total.transport_failed || t.transport_failed;
    latencies.insert(latencies.end(), t.latencies_ms.begin(),
                     t.latencies_ms.end());
  }

  {
    support::JsonWriter w(std::cout, /*indent_width=*/-1);
    w.begin_object();
    w.kv("schema", "autolayout.client_summary");
    w.kv("schema_version", 1);
    w.kv("sent", total.sent);
    w.kv("ok", total.ok);
    w.kv("rejected", total.rejected);
    w.kv("infeasible", total.infeasible);
    w.kv("errors", total.errors);
    w.kv("connections", connections);
    w.kv("wall_ms", wall_ms);
    w.kv("throughput_rps",
         wall_ms > 0.0 ? static_cast<double>(latencies.size()) / (wall_ms / 1e3)
                       : 0.0);
    w.kv("p50_ms", percentile(latencies, 50.0));
    w.kv("p95_ms", percentile(latencies, 95.0));
    w.kv("p99_ms", percentile(latencies, 99.0));
    w.end_object();
  }
  return total.transport_failed ? 1 : 0;
}
