// Corpus-wide simulator-as-oracle sweep (DESIGN.md section 16): run the
// four experiment programs plus a batch of generated programs through the
// full pipeline with oracle validation and aggregate the estimator's
// report card -- predicted-vs-simulated error and ranking-inversion rates.
//
//   autolayout_validate [--procs P] [--rivals K] [--seed S]
//                       [--margin PCT] [--generated N] [--gen-seed S]
//                       [--max-phases B] [--max-inversion-rate PCT]
//                       [--calibrated] [--quiet]
//
//   --margin PCT              chosen-vs-rival slowdown tolerated (default 25)
//   --generated N             generated programs to sweep (default 24)
//   --max-phases B            phase ceiling for generated programs (default 16)
//   --max-inversion-rate PCT  aggregate pairwise inversion-rate gate
//                             (default 20)
//   --calibrated              run under the sim-calibrated machine model
//                             (oracle::calibrate_machine) instead of the
//                             synthesized tables
//
// Exit status: 0 = no chosen-vs-rival inversion beyond the margin anywhere
// AND the aggregate pairwise inversion rate is under the gate; 1 = an
// inversion-rate regression (details on stderr); 2 = usage error.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "corpus/corpus.hpp"
#include "driver/tool.hpp"
#include "gen/generator.hpp"
#include "gen/rng.hpp"
#include "oracle/calibrate.hpp"
#include "support/text.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--procs P] [--rivals K] [--seed S] [--margin PCT]\n"
               "          [--generated N] [--gen-seed S] [--max-phases B]\n"
               "          [--max-inversion-rate PCT] [--calibrated] [--quiet]\n",
               argv0);
  return 2;
}

struct Totals {
  int programs = 0;
  int pairs = 0;
  int inversions = 0;
  int chosen_inversions = 0;
  double max_abs_total_error = 0.0;
  double worst_gap = -1.0;
  std::string worst_program;
};

} // namespace

int main(int argc, char** argv) {
  using namespace al;
  driver::ToolOptions opts;
  opts.validate = true;
  opts.procs = 16;
  int generated = 24;
  long gen_seed = 1;
  int max_phases = 16;
  int max_inversion_rate_pct = 20;
  bool calibrated = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto int_flag = [&](const char* name, int min, int max, int& out) {
      if (std::strcmp(arg, name) != 0) return false;
      if (i + 1 >= argc || !parse_int(argv[++i], min, max, out)) {
        std::fprintf(stderr, "%s: %s needs an integer in [%d, %d]\n", argv[0],
                     name, min, max);
        out = -1;
      }
      return true;
    };
    int scratch = 0;
    if (int_flag("--procs", 1, 4096, opts.procs)) {
      if (opts.procs < 0) return usage(argv[0]);
    } else if (int_flag("--rivals", 0, 4096, opts.validate_rivals)) {
      if (opts.validate_rivals < 0) return usage(argv[0]);
    } else if (std::strcmp(arg, "--seed") == 0) {
      long s = 0;
      if (i + 1 >= argc || !parse_long(argv[++i], 0, 1'000'000'000L, s))
        return usage(argv[0]);
      opts.sim_seed = static_cast<std::uint64_t>(s);
    } else if (int_flag("--margin", 0, 10'000, scratch)) {
      if (scratch < 0) return usage(argv[0]);
      opts.validate_margin = scratch / 100.0;
    } else if (int_flag("--generated", 0, 1'000'000, generated)) {
      if (generated < 0) return usage(argv[0]);
    } else if (std::strcmp(arg, "--gen-seed") == 0) {
      if (i + 1 >= argc || !parse_long(argv[++i], 0, 1'000'000'000L, gen_seed))
        return usage(argv[0]);
    } else if (int_flag("--max-phases", 1, 512, max_phases)) {
      if (max_phases < 0) return usage(argv[0]);
    } else if (int_flag("--max-inversion-rate", 0, 100, max_inversion_rate_pct)) {
      if (max_inversion_rate_pct < 0) return usage(argv[0]);
    } else if (std::strcmp(arg, "--calibrated") == 0) {
      calibrated = true;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else {
      return usage(argv[0]);
    }
  }

  if (calibrated) {
    const oracle::CalibrationResult cal = oracle::calibrate_machine(opts.machine);
    std::printf("calibrated %d training entries (rms residual %.1f%%, max %.1f%%)\n",
                cal.entries, cal.rms_rel_residual * 100.0,
                cal.max_rel_residual * 100.0);
    opts.machine = cal.model;
  }

  Totals totals;
  bool any_failed = false;
  auto run_one = [&](const std::string& name, const std::string& source) {
    std::unique_ptr<driver::ToolResult> r;
    try {
      r = driver::run_tool(source, opts);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s: pipeline threw: %s\n", argv[0], name.c_str(),
                   e.what());
      any_failed = true;
      return;
    }
    const oracle::ValidationReport& o = r->oracle;
    ++totals.programs;
    totals.pairs += o.pairs;
    totals.inversions += o.inversions;
    totals.chosen_inversions += o.chosen_inversions;
    if (std::abs(o.total_rel_error) > totals.max_abs_total_error)
      totals.max_abs_total_error = std::abs(o.total_rel_error);
    if (o.worst_rival_gap > totals.worst_gap) {
      totals.worst_gap = o.worst_rival_gap;
      totals.worst_program = name;
    }
    if (!quiet) {
      std::printf("%s  phases %3d  rivals %2zu  err %+6.1f%%  inversions %d/%d"
                  "  worst gap %+6.1f%%  %s\n",
                  pad_right(name, 28).c_str(), r->pcfg.num_phases(),
                  o.rivals.size(), o.total_rel_error * 100.0, o.inversions,
                  o.pairs, o.worst_rival_gap * 100.0,
                  o.ok ? "ok" : "CHOSEN-INVERSION");
    }
    if (!o.ok) {
      std::fprintf(stderr, "%s: %s: %s\n", argv[0], name.c_str(), o.message.c_str());
      any_failed = true;
    }
  };

  // The paper's four experiment programs at validation-friendly sizes.
  const std::vector<corpus::TestCase> corpus_cases = {
      {"adi", 128, corpus::Dtype::DoublePrecision, opts.procs},
      {"erlebacher", 32, corpus::Dtype::DoublePrecision, opts.procs},
      {"tomcatv", 128, corpus::Dtype::DoublePrecision, opts.procs},
      {"shallow", 128, corpus::Dtype::Real, opts.procs},
  };
  for (const corpus::TestCase& c : corpus_cases)
    run_one(c.name(), corpus::source_for(c));

  // Generated programs, growing toward the phase ceiling so large layout
  // graphs (where estimator error compounds) are represented.
  gen::Rng rng(static_cast<std::uint64_t>(gen_seed));
  for (int k = 0; k < generated; ++k) {
    gen::GenOptions gopts;
    gopts.min_phases = 2 + (k * max_phases) / std::max(generated, 1) / 2;
    gopts.max_phases = std::max(gopts.min_phases + 1,
                                2 + (k * max_phases) / std::max(generated, 1));
    run_one("generated-" + std::to_string(k), gen::random_program(rng, gopts));
  }

  const double rate =
      totals.pairs > 0 ? static_cast<double>(totals.inversions) / totals.pairs : 0.0;
  std::printf("\n%d programs: %d/%d pairwise inversions (%.1f%%), "
              "%d chosen-vs-rival inversion(s), max |total error| %.1f%%, "
              "worst rival gap %+.1f%% (%s)\n",
              totals.programs, totals.inversions, totals.pairs, rate * 100.0,
              totals.chosen_inversions, totals.max_abs_total_error * 100.0,
              totals.worst_gap * 100.0, totals.worst_program.c_str());

  if (rate * 100.0 > max_inversion_rate_pct) {
    std::fprintf(stderr,
                 "%s: pairwise inversion rate %.1f%% exceeds the %d%% gate\n",
                 argv[0], rate * 100.0, max_inversion_rate_pct);
    any_failed = true;
  }
  return any_failed ? 1 : 0;
}
