// The data layout assistant as a command-line tool.
//
//   autolayout [options] program.f      ("-" reads the program from stdin)
//
//   -p, --procs N          processors to lay out for        (default 16)
//   -j, --threads N        estimation worker threads; 0 = one per hardware
//                          core (default), 1 = fully serial. Any value
//                          yields bit-identical layouts.
//   -C, --no-cache         disable estimator memoization (model benchmarks)
//   --no-run-cache         do not consult the whole-run result cache
//   --run-cache-entries N  run-cache entry cap (0 = unbounded; default 1024)
//   --run-cache-bytes N    run-cache byte cap (0 = unbounded; default 64 MiB)
//   -m, --machine NAME     ipsc860 | paragon                (default ipsc860)
//   -t, --training FILE    load a training-set file over the machine model
//   -x, --extended         extended distribution search (cyclic, 2-D meshes)
//   --mip-nodes N          branch-and-bound node budget per exact 0-1 solve;
//                          a budget hit degrades to incumbent/DP/greedy
//                          fallbacks instead of aborting
//   --mip-deadline-ms N    wall-clock budget per exact 0-1 solve (same
//                          graceful degradation); 0 expires immediately,
//                          forcing every solve onto the fallback ladder
//   --mip-branching RULE   branch-and-bound variable selection: pseudocost
//                          (default) or most-fractional (baseline)
//   --lp-core CORE         simplex basis representation: sparse (Markowitz
//                          LU + eta updates, default) or dense (explicit
//                          inverse oracle; same answers, O(m^2) pivots)
//   --no-cuts              skip clique/cover cut separation at the B&B root
//   --no-partial-pricing   full Dantzig pricing instead of the sectioned
//                          round-robin scan
//   --no-warm-start        solve every B&B node LP cold (disable the dual-
//                          simplex basis reuse)
//   --no-presolve          skip the 0-1 presolve before branch and bound
//   --no-dominance         keep dominated candidate layouts in the
//                          selection ILP
//   -g, --guess-probs      ignore !al$ prob annotations (50% guess)
//   -s, --scalar-expand    expand scalar temporaries before analysis
//   -R, --replicate        consider replicating read-only arrays
//   -r, --report           also time every alternative on the simulator
//   --validate[=K]         simulator-as-oracle validation: simulate the
//                          chosen layout plus K sampled rival assignments
//                          (default 8) and report predicted-vs-simulated
//                          error and ranking inversions
//   --sim-seed N           simulator jitter / rival-sampling seed
//                          (default 0x5EED = 24301)
//   -d, --directives       print the annotated program with HPF directives
//   -v, --verbose          per-phase static performance report
//   -q, --quiet            only the final layout
//   -J, --json FILE        write the full run as a schema-versioned JSON
//                          document ("-" = stdout)
//   -T, --trace FILE       enable span tracing and write a Chrome trace-event
//                          file ("-" = stdout; load in chrome://tracing)
//
// Exit status: 0 on success, 1 on usage/frontend/internal errors, 2 when the
// layout problem itself is infeasible (no layout exists -- e.g. an empty
// candidate space).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>

#include "autolayout.hpp"
#include "driver/json_report.hpp"
#include "driver/report.hpp"
#include "driver/run_cache.hpp"
#include "machine/io.hpp"
#include "support/metrics.hpp"
#include "support/text.hpp"
#include "support/trace.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [-p procs] [-j threads] [-m ipsc860|paragon] [-t training.tsv]\n"
               "          [-x] [-g] [-C] [-r] [-d] [-q] [-J out.json] [-T trace.json]\n"
               "          [--mip-nodes N] [--mip-deadline-ms N]\n"
               "          [--mip-branching pseudocost|most-fractional]\n"
               "          [--lp-core sparse|dense] [--no-cuts] [--no-partial-pricing]\n"
               "          [--no-warm-start] [--no-presolve] [--no-dominance]\n"
               "          [--no-run-cache] [--run-cache-entries N] [--run-cache-bytes N]\n"
               "          [--validate[=K]] [--sim-seed N]\n"
               "          program.f\n",
               argv0);
}

/// Writes `text` to `path` ("-" = stdout). Returns false on I/O failure.
bool write_text_file(const char* argv0, const std::string& path,
                     const std::string& text) {
  if (path == "-") {
    std::cout << text;
    return true;
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "%s: cannot write '%s'\n", argv0, path.c_str());
    return false;
  }
  out << text;
  return true;
}

} // namespace

int main(int argc, char** argv) {
  using namespace al;
  driver::ToolOptions opts;
  opts.procs = 16;
  bool report = false;
  bool verbose = false;
  bool directives = false;
  bool quiet = false;
  std::string machine_name = "ipsc860";
  perf::RunCacheConfig cache_cfg;
  std::string training_file;
  std::string json_file;
  std::string trace_file;
  std::string input;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0], flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (a == "-p" || a == "--procs") {
      // atoi accepts "16x" as 16 and garbage as 0 -- every numeric flag goes
      // through the strict whole-string parse instead.
      const char* v = need_value("--procs");
      if (!parse_int(v, 1, std::numeric_limits<int>::max(), opts.procs)) {
        std::fprintf(stderr, "%s: bad processor count '%s'\n", argv[0], v);
        return 1;
      }
    } else if (a == "-j" || a == "--threads") {
      // 0 is a VALID count here (hardware default), so rejecting garbage
      // cannot be left to the value check.
      const char* v = need_value("--threads");
      if (!parse_int(v, 0, std::numeric_limits<int>::max(), opts.threads)) {
        std::fprintf(stderr, "%s: bad thread count '%s'\n", argv[0], v);
        return 1;
      }
    } else if (a == "--mip-nodes") {
      const char* v = need_value("--mip-nodes");
      if (!parse_long(v, 1, std::numeric_limits<long>::max(), opts.mip.max_nodes)) {
        std::fprintf(stderr, "%s: bad node budget '%s'\n", argv[0], v);
        return 1;
      }
    } else if (a == "--mip-deadline-ms") {
      const char* v = need_value("--mip-deadline-ms");
      long ms = 0;
      if (!parse_long(v, 0, std::numeric_limits<long>::max(), ms)) {
        std::fprintf(stderr, "%s: bad deadline '%s'\n", argv[0], v);
        return 1;
      }
      // MipOptions treats <= 0 as "no deadline", so an explicit zero maps to
      // an already-expired deadline: every exact solve gives up at its first
      // check and the degradation ladder supplies the answer.
      opts.mip.deadline_ms = ms > 0 ? static_cast<double>(ms) : 1e-9;
    } else if (a == "--mip-branching") {
      const std::string v = need_value("--mip-branching");
      if (v == "pseudocost") {
        opts.mip.branching = ilp::Branching::PseudoCost;
      } else if (v == "most-fractional") {
        opts.mip.branching = ilp::Branching::MostFractional;
      } else {
        std::fprintf(stderr, "%s: bad branching rule '%s' (pseudocost|most-fractional)\n",
                     argv[0], v.c_str());
        return 1;
      }
    } else if (a == "--lp-core") {
      const std::string v = need_value("--lp-core");
      if (v == "sparse") {
        opts.mip.lp_core = ilp::LpCore::Sparse;
      } else if (v == "dense") {
        opts.mip.lp_core = ilp::LpCore::Dense;
      } else {
        std::fprintf(stderr, "%s: bad LP core '%s' (sparse|dense)\n", argv[0],
                     v.c_str());
        return 1;
      }
    } else if (a == "--no-cuts") {
      opts.mip.cuts = false;
    } else if (a == "--no-partial-pricing") {
      opts.mip.partial_pricing = false;
    } else if (a == "--no-warm-start") {
      opts.mip.warm_start = false;
    } else if (a == "--no-presolve") {
      opts.mip.presolve = false;
    } else if (a == "--no-dominance") {
      opts.dominance = false;
    } else if (a == "-C" || a == "--no-cache") {
      opts.estimator_cache = false;
    } else if (a == "--no-run-cache") {
      opts.run_cache = false;
    } else if (a == "--run-cache-entries") {
      const char* v = need_value("--run-cache-entries");
      long n = 0;
      // 0 is valid (unbounded), so the strict parse carries the rejection.
      if (!parse_long(v, 0, std::numeric_limits<long>::max(), n)) {
        std::fprintf(stderr, "%s: bad run-cache entry cap '%s'\n", argv[0], v);
        return 1;
      }
      cache_cfg.max_entries = static_cast<std::size_t>(n);
    } else if (a == "--run-cache-bytes") {
      const char* v = need_value("--run-cache-bytes");
      long n = 0;
      if (!parse_long(v, 0, std::numeric_limits<long>::max(), n)) {
        std::fprintf(stderr, "%s: bad run-cache byte cap '%s'\n", argv[0], v);
        return 1;
      }
      cache_cfg.max_bytes = static_cast<std::size_t>(n);
    } else if (a == "-m" || a == "--machine") {
      machine_name = need_value("--machine");
    } else if (a == "-t" || a == "--training") {
      training_file = need_value("--training");
    } else if (a == "-x" || a == "--extended") {
      opts.distribution_strategy = distrib::Strategy::ExtendedExhaustive;
    } else if (a == "-g" || a == "--guess-probs") {
      opts.phase.use_annotated_probabilities = false;
    } else if (a == "-s" || a == "--scalar-expand") {
      opts.scalar_expansion = true;
    } else if (a == "-R" || a == "--replicate") {
      opts.replicate_unwritten = true;
    } else if (a == "--validate" || a.rfind("--validate=", 0) == 0) {
      opts.validate = true;
      if (a.size() > std::strlen("--validate")) {
        const char* v = a.c_str() + std::strlen("--validate=");
        if (!parse_int(v, 0, std::numeric_limits<int>::max(), opts.validate_rivals)) {
          std::fprintf(stderr, "%s: bad rival count '%s'\n", argv[0], v);
          return 1;
        }
      }
    } else if (a == "--sim-seed") {
      const char* v = need_value("--sim-seed");
      long seed = 0;
      if (!parse_long(v, 0, std::numeric_limits<long>::max(), seed)) {
        std::fprintf(stderr, "%s: bad simulator seed '%s'\n", argv[0], v);
        return 1;
      }
      opts.sim_seed = static_cast<std::uint64_t>(seed);
    } else if (a == "-r" || a == "--report") {
      report = true;
    } else if (a == "-v" || a == "--verbose") {
      verbose = true;
    } else if (a == "-d" || a == "--directives") {
      directives = true;
    } else if (a == "-q" || a == "--quiet") {
      quiet = true;
    } else if (a == "-J" || a == "--json") {
      json_file = need_value("--json");
    } else if (a == "-T" || a == "--trace") {
      trace_file = need_value("--trace");
    } else if (a == "-h" || a == "--help") {
      usage(argv[0]);
      return 0;
    } else if (a != "-" && !a.empty() && a[0] == '-') {
      // A bare "-" is the stdin input path (mirroring "-" = stdout for
      // --json/--trace), not an option.
      std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], a.c_str());
      usage(argv[0]);
      return 1;
    } else if (input.empty()) {
      input = a;
    } else {
      std::fprintf(stderr, "%s: more than one input file\n", argv[0]);
      return 1;
    }
  }
  if (input.empty()) {
    usage(argv[0]);
    return 1;
  }

  if (machine_name == "ipsc860") {
    opts.machine = machine::make_ipsc860();
  } else if (machine_name == "paragon") {
    opts.machine = machine::make_paragon();
  } else {
    std::fprintf(stderr, "%s: unknown machine '%s'\n", argv[0], machine_name.c_str());
    return 1;
  }

  try {
    if (!training_file.empty()) {
      std::ifstream ts(training_file);
      if (!ts) {
        std::fprintf(stderr, "%s: cannot open '%s'\n", argv[0], training_file.c_str());
        return 1;
      }
      std::ostringstream buf;
      buf << ts.rdbuf();
      DiagnosticEngine diags;
      machine::TrainingSetDB db = machine::parse_training_sets(buf.str(), diags);
      if (diags.has_errors()) {
        std::fprintf(stderr, "%s: %s", argv[0], diags.str().c_str());
        return 1;
      }
      opts.machine.training = std::move(db);
      opts.machine.name += " (+" + training_file + ")";
    }

    std::ostringstream src;
    if (input == "-") {
      src << std::cin.rdbuf();
    } else {
      std::ifstream in(input);
      if (!in) {
        std::fprintf(stderr, "%s: cannot open '%s'\n", argv[0], input.c_str());
        return 1;
      }
      src << in.rdbuf();
    }

    // One CLI invocation is one run: start the observability layer clean so
    // the exported counters/spans describe exactly this run.
    support::Metrics::instance().reset();
    if (!trace_file.empty()) {
      support::Tracer::instance().set_enabled(true);
      support::Tracer::instance().reset();
    }

    // One CLI invocation is one run, so its private run cache exists to
    // give the run a cache identity (the report's "run_cache" block and the
    // -v line below), not to save work -- services hold the long-lived one.
    perf::RunCache run_cache(cache_cfg);
    driver::CachedRunResult cached = driver::run_tool_cached(
        src.str(), opts, opts.run_cache ? &run_cache : nullptr);
    auto result = std::move(cached.result);  // fresh cache: always computed

    if (!json_file.empty() &&
        !write_text_file(argv[0], json_file, driver::json_report(*result)))
      return 1;
    if (!trace_file.empty() &&
        !write_text_file(argv[0], trace_file,
                         support::Tracer::instance().chrome_trace_json()))
      return 1;

    // "-" sends a machine-readable document to stdout; mixing the human
    // listing into the same stream would corrupt it for consumers.
    if (json_file == "-" || trace_file == "-") return 0;

    if (!quiet) {
      std::printf("machine:   %s, %d processors\n", opts.machine.name.c_str(),
                  opts.procs);
      std::printf("template:  %s\n", result->templ.str().c_str());
      std::printf("phases:    %d in %zu alignment class(es)\n",
                  result->pcfg.num_phases(),
                  result->alignment.partition.classes.size());
      std::printf("selection: %d vars, %d constraints, %.1f ms, %s layout",
                  result->selection.ilp_variables, result->selection.ilp_constraints,
                  result->selection.solve_ms,
                  result->is_dynamic() ? "DYNAMIC" : "static");
      if (result->selection.is_fallback()) {
        std::printf(" [solver %s -> %s fallback]",
                    ilp::to_string(result->selection.solver_status),
                    select::to_string(result->selection.engine));
      }
      if (!result->verification.ok) {
        std::printf(" [CHECKER FAILED: %s]", result->verification.message.c_str());
      }
      std::printf("\n\n");
    }
    for (int p = 0; p < result->pcfg.num_phases(); ++p) {
      std::printf("phase %2d: %s\n", p,
                  result->chosen_layout(p).str(result->program.symbols).c_str());
    }

    if (opts.validate && !quiet) {
      const oracle::ValidationReport& o = result->oracle;
      std::printf("\noracle:    %zu rival(s) simulated, total error %+.1f%%, "
                  "ranking inversions %d/%d, chosen-vs-rival %s\n",
                  o.rivals.size(), o.total_rel_error * 100.0, o.inversions, o.pairs,
                  o.ok ? "OK" : "FAILED");
      if (!o.ok) std::printf("oracle:    %s\n", o.message.c_str());
    }

    if (verbose) {
      if (cached.consulted) {
        std::printf("\nrun cache: %s (%s; caps: %zu entries, %zu bytes)\n",
                    cached.key.hex().c_str(), cached.hit ? "hit" : "miss",
                    run_cache.config().max_entries,
                    run_cache.config().max_bytes);
      } else {
        std::printf("\nrun cache: off\n");
      }
      std::printf("\n%s", driver::performance_report(*result).c_str());
    }
    if (report) {
      std::printf("\n%s",
                  driver::report_table(driver::evaluate_alternatives(*result)).c_str());
    }
    if (directives) {
      std::printf("\n%s", driver::emit_annotated_program(*result).c_str());
    }
  } catch (const InfeasibleError& e) {
    // Not a tool failure: the problem provably admits no layout. Distinct
    // exit code so scripted callers can tell "no solution exists" from
    // "the tool broke".
    std::fprintf(stderr, "%s: infeasible: %s\n", argv[0], e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 1;
  }
  return 0;
}
