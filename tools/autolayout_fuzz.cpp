// Differential fuzzing harness over the generative workload engine
// (DESIGN.md section 14): generates seeded random Fortran programs, runs
// each through gen::check_differential (ILP vs DP vs greedy, verified
// selections, cost ordering, thread determinism, run-cache byte identity),
// and on the first failure shrinks the program to a minimal reproducer and
// prints it with its seed and program index.
//
//   autolayout_fuzz [--count N] [--seed S] [--procs P] [--threads T]
//                   [--min-phases A] [--max-phases B] [--max-arrays K]
//                   [--max-rank R] [--n EXTENT] [--no-cache-check]
//                   [--no-core-check] [--no-oracle-check]
//                   [--oracle-margin PCT] [--no-shrink] [--quiet]
//
// The sparse-vs-dense LP core cross-check (D7) is ON by default here: every
// generated selection MIP is re-solved with the dense-inverse oracle and the
// selections must be identical. --no-core-check restores D1-D6 only.
// The simulator-as-oracle check (D8) is also on by default: no sampled rival
// assignment may beat the chosen layout on the SPMD simulator by more than
// the margin (--oracle-margin, percent; default 40 -- wider than the
// driver's --validate default because tiny generated programs maximize the
// estimator's documented pipelining bias). --no-oracle-check disables it.
//
// Exit status: 0 = every program held all invariants, 1 = a failure (the
// reproducer is on stderr), 2 = usage error.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "gen/differential.hpp"
#include "gen/generator.hpp"
#include "gen/mutate.hpp"
#include "gen/rng.hpp"
#include "select/ilp_selection.hpp"
#include "support/text.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--count N] [--seed S] [--procs P] [--threads T]\n"
      "          [--min-phases A] [--max-phases B] [--max-arrays K]\n"
      "          [--max-rank R] [--n EXTENT] [--no-cache-check]\n"
      "          [--no-core-check] [--no-oracle-check] [--oracle-margin PCT]\n"
      "          [--no-shrink] [--quiet]\n",
      argv0);
  return 2;
}

} // namespace

int main(int argc, char** argv) {
  int count = 1000;
  long seed = 1;
  bool shrink = true;
  bool quiet = false;
  al::gen::GenOptions gopts;
  al::gen::DiffOptions dopts;
  dopts.check_lp_cores = true;  // D7 on by default in the fuzzer

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto int_flag = [&](const char* name, int min, int max, int& out) {
      if (std::strcmp(arg, name) != 0) return false;
      // Strict whole-lexeme parse (the repo-wide rule; atoi would take "16x").
      if (i + 1 >= argc || !al::parse_int(argv[++i], min, max, out)) {
        std::fprintf(stderr, "%s: %s needs an integer in [%d, %d]\n", argv[0],
                     name, min, max);
        out = -1;
      }
      return true;
    };
    int scratch = 0;
    if (int_flag("--count", 1, 10'000'000, count)) {
      if (count < 0) return usage(argv[0]);
    } else if (std::strcmp(arg, "--seed") == 0) {
      if (i + 1 >= argc || !al::parse_long(argv[++i], 0, 1'000'000'000L, seed))
        return usage(argv[0]);
    } else if (int_flag("--procs", 1, 4096, dopts.procs)) {
      if (dopts.procs < 0) return usage(argv[0]);
    } else if (int_flag("--threads", 0, 256, dopts.alt_threads)) {
      if (dopts.alt_threads < 0) return usage(argv[0]);
    } else if (int_flag("--min-phases", 1, 512, gopts.min_phases)) {
      if (gopts.min_phases < 0) return usage(argv[0]);
    } else if (int_flag("--max-phases", 1, 512, gopts.max_phases)) {
      if (gopts.max_phases < 0) return usage(argv[0]);
    } else if (int_flag("--max-arrays", 1, 26, gopts.max_arrays)) {
      if (gopts.max_arrays < 0) return usage(argv[0]);
    } else if (int_flag("--max-rank", 1, 3, gopts.max_rank)) {
      if (gopts.max_rank < 0) return usage(argv[0]);
    } else if (int_flag("--n", 8, 512, scratch)) {
      if (scratch < 0) return usage(argv[0]);
      gopts.n = scratch;
    } else if (std::strcmp(arg, "--no-cache-check") == 0) {
      dopts.check_run_cache = false;
    } else if (std::strcmp(arg, "--no-core-check") == 0) {
      dopts.check_lp_cores = false;
    } else if (std::strcmp(arg, "--no-oracle-check") == 0) {
      dopts.check_oracle = false;
    } else if (int_flag("--oracle-margin", 0, 10'000, scratch)) {
      if (scratch < 0) return usage(argv[0]);
      dopts.oracle_margin = scratch / 100.0;
    } else if (std::strcmp(arg, "--no-shrink") == 0) {
      shrink = false;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (gopts.min_phases > gopts.max_phases) {
    std::fprintf(stderr, "%s: --min-phases exceeds --max-phases\n", argv[0]);
    return 2;
  }

  al::gen::Rng rng(static_cast<std::uint64_t>(seed));
  std::map<std::string, long> engines;
  long dp_applicable = 0;
  int max_phases_seen = 0;
  int max_vars_seen = 0;

  for (int k = 0; k < count; ++k) {
    const al::gen::ProgramSpec spec = al::gen::random_spec(rng, gopts);
    const std::string source = al::gen::emit_fortran(spec);
    const al::gen::DiffResult res = al::gen::check_differential(source, dopts);
    if (!res.ok) {
      std::fprintf(stderr,
                   "FAIL at program %d (seed %ld):\n  %s\n--- failing program "
                   "---\n%s",
                   k, seed, res.failure.c_str(), source.c_str());
      if (shrink) {
        const auto minimal = al::gen::shrink_failure(spec, dopts);
        if (minimal) {
          std::fprintf(stderr,
                       "--- minimal reproducer (%d shrink steps) ---\n"
                       "  %s\n%s",
                       minimal->steps, minimal->failure.failure.c_str(),
                       minimal->source.c_str());
        }
      }
      return 1;
    }
    engines[al::select::to_string(res.engine)]++;
    if (res.dp_applicable) ++dp_applicable;
    max_phases_seen = std::max(max_phases_seen, res.phases);
    max_vars_seen = std::max(max_vars_seen, res.ilp_variables);
    if (!quiet && (k + 1) % 100 == 0)
      std::printf("  %d/%d programs ok\n", k + 1, count);
  }

  std::printf("%d generated programs, all invariants held (seed %ld)\n", count,
              seed);
  std::printf("  engines:");
  for (const auto& [name, n] : engines) std::printf(" %s=%ld", name.c_str(), n);
  std::printf("\n  DP oracle applicable on %ld/%d; largest program %d phases, "
              "largest selection MIP %d variables\n",
              dp_applicable, count, max_phases_seen, max_vars_seen);
  return 0;
}
