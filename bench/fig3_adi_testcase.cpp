// Figure 3: the Adi example test case -- double precision, 512 x 512,
// 16 processors -- with its three data layout alternatives (static row,
// static column, dynamic transpose), predicted and measured times, and the
// tool's pick. The paper's tool chose the static row-wise layout and ranked
// all alternatives correctly; this bench must show the same.
#include "common.hpp"

int main() {
  using namespace al;
  corpus::TestCase c{"adi", 512, corpus::Dtype::DoublePrecision, 16};
  std::printf("== Figure 3: Adi test case (%s) ==\n\n", c.name().c_str());
  bench::CaseRun run = bench::run_case(c);
  bench::print_case(c, run.report);

  const auto& sel = run.tool->selection;
  std::printf("selection ILP: %d variables, %d constraints, solved in %.1f ms "
              "(paper: 61 variables, 53 constraints, 60 ms on a SPARC-10)\n",
              sel.ilp_variables, sel.ilp_constraints, sel.solve_ms);
  const int tdim =
      run.tool->chosen_layout(0).distribution().single_distributed_dim();
  std::printf("tool's layout: %s (paper: static row-wise)\n",
              tdim == 0 ? "static row-wise (dim 1)" : "NOT row-wise");
  return run.report.picked_best && run.report.ranking_correct ? 0 : 1;
}
