// Ablation: replication candidates (the paper mentions replication as a
// distribution option but the prototype's exhaustive spaces exclude it).
// Erlebacher's shared read-only array is the canonical beneficiary: instead
// of remapping f between the symmetric sweeps, every node can simply keep a
// copy -- one allgather replaces all redistributions, at the price of
// running f's initialization redundantly.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace al;
  const std::vector<int> procs = {4, 8, 16, 32, 64};
  std::printf("== Replication ablation: Erlebacher 64^3 double ==\n\n");
  std::printf("%s%s%s%s\n", pad_right("procs", 8).c_str(),
              pad_left("no replication (s)", 22).c_str(),
              pad_left("with replication (s)", 22).c_str(),
              pad_left("replicates f?", 16).c_str());
  for (int p : procs) {
    corpus::TestCase c{"erlebacher", 64, corpus::Dtype::DoublePrecision, p};
    driver::ToolOptions plain;
    plain.procs = p;
    driver::ToolOptions repl = plain;
    repl.replicate_unwritten = true;
    auto tp = driver::run_tool(corpus::source_for(c), plain);
    auto tr = driver::run_tool(corpus::source_for(c), repl);
    bool replicates = false;
    const int f = tr->program.symbols.lookup("f");
    for (int ph = 0; ph < tr->pcfg.num_phases(); ++ph) {
      if (tr->chosen_layout(ph).alignment().is_replicated(f)) replicates = true;
    }
    std::printf("%s%s%s%s\n", pad_right("P=" + std::to_string(p), 8).c_str(),
                pad_left(format_fixed(tp->selection.total_cost_us / 1e6, 3), 22).c_str(),
                pad_left(format_fixed(tr->selection.total_cost_us / 1e6, 3), 22).c_str(),
                pad_left(replicates ? "yes" : "no", 16).c_str());
  }
  std::printf("\n(the replication space is a superset: its optimum can only be\n"
              " at least as good; whether it replicates depends on the allgather\n"
              " cost vs the redistributions it saves)\n");
  return 0;
}
