// The summary experiment (paper sections 4 and 6): all 99 test cases over
// the four programs. For each program we report, next to the paper's
// numbers, how often each alternative was the measured best, how often the
// tool picked the measured-best layout, the worst-case loss of a
// suboptimal pick, and the largest 0-1 problem solve time.
//
//   paper: Adi 40 cases (row best 24x, dynamic 16x), tool optimal 36x,
//          worst loss 9.3%;  Erlebacher 21 (coarse dim2 9x, dim3 2x,
//          dynamic 10x), tool 13x, loss <= 8.6%;  Tomcatv 19, column best
//          17x, tool column always, loss 1.0%;  Shallow 19, column 18x,
//          tool column always, loss 1.8%.  Total: 99 cases, 84 optimal,
//          every 0-1 instance under 1.1 s.
#include <algorithm>
#include <map>

#include "common.hpp"

namespace {

struct ProgramStats {
  int cases = 0;
  int tool_optimal = 0;
  int ranking_correct = 0;
  double worst_loss = 0.0;
  std::map<std::string, int> best_counts;
  double max_solve_ms = 0.0;
  int max_vars = 0;
  int max_cons = 0;
};

std::string strip(const std::string& name) {
  std::string key = name;
  if (auto pos = key.find(" (BLOCK"); pos != std::string::npos) key = key.substr(0, pos);
  if (auto pos = key.find(" (*,"); pos != std::string::npos) key = key.substr(0, pos);
  return key;
}

} // namespace

int main() {
  using namespace al;
  std::map<std::string, ProgramStats> stats;
  int total_cases = 0;
  int total_optimal = 0;
  double total_worst_loss = 0.0;
  double max_ilp_ms = 0.0;

  for (const corpus::TestCase& c : corpus::all_cases()) {
    bench::CaseRun run = bench::run_case(c);
    ProgramStats& s = stats[c.program];
    ++s.cases;
    ++total_cases;
    if (run.report.picked_best) {
      ++s.tool_optimal;
      ++total_optimal;
    }
    if (run.report.ranking_correct) ++s.ranking_correct;
    s.worst_loss = std::max(s.worst_loss, run.report.loss_fraction);
    total_worst_loss = std::max(total_worst_loss, run.report.loss_fraction);
    const auto& best =
        run.report.alternatives[static_cast<std::size_t>(run.report.best_measured)];
    ++s.best_counts[strip(best.name)];
    s.max_solve_ms = std::max(s.max_solve_ms, run.report.selection.solve_ms);
    s.max_vars = std::max(s.max_vars, run.report.selection.ilp_variables);
    s.max_cons = std::max(s.max_cons, run.report.selection.ilp_constraints);
    max_ilp_ms = std::max(max_ilp_ms, run.report.selection.solve_ms);
    // Alignment-conflict ILPs (tomcatv) count toward the time budget too.
    for (const auto& res : run.tool->alignment.ilp_resolutions) {
      (void)res;
    }
  }

  std::printf("== Summary over the paper's 99 test cases ==\n\n");
  for (const auto& [prog, s] : stats) {
    std::printf("%s: %d cases\n", prog.c_str(), s.cases);
    for (const auto& [name, count] : s.best_counts) {
      std::printf("    measured-best %-28s %d cases\n", name.c_str(), count);
    }
    std::printf("    tool picked measured-best in %d / %d cases\n", s.tool_optimal,
                s.cases);
    std::printf("    ranking fully correct in     %d / %d cases\n", s.ranking_correct,
                s.cases);
    std::printf("    worst suboptimal-pick loss   %.1f %%\n", s.worst_loss * 100.0);
    std::printf("    largest selection ILP        %d vars, %d constraints, %.0f ms\n\n",
                s.max_vars, s.max_cons, s.max_solve_ms);
  }
  std::printf("TOTAL: tool optimal in %d / %d cases (paper: 84 / 99), worst loss "
              "%.1f %% (paper: 9.3 %%), slowest 0-1 solve %.0f ms (paper: all "
              "under 1100 ms)\n",
              total_optimal, total_cases, total_worst_loss * 100.0, max_ilp_ms);
  return 0;
}
