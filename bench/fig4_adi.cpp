// Figure 4: Adi, 256 x 256 double precision -- measured and estimated
// execution times of every data layout alternative across the five
// processor counts. Expected shape: column always worst (sequentialized
// y sweeps), row vs dynamic-transpose close, crossover at higher P.
#include "common.hpp"

int main() {
  using namespace al;
  const std::vector<int> procs = {2, 4, 8, 16, 32};
  std::printf("== Figure 4: Adi 256x256 double precision (seconds) ==\n\n");
  bench::SeriesResult sr = bench::run_series(procs, [](int p) {
    return corpus::TestCase{"adi", 256, corpus::Dtype::DoublePrecision, p};
  });
  bench::print_series(procs, sr.rows);
  std::printf("\ntool picks:%s\n", sr.picks.c_str());
  return 0;
}
