// Figure 7: Shallow, 384 x 384 REAL -- row vs column distribution. The
// stencils parallelize either way, but a row distribution exchanges
// strided boundary ROWS that must be buffered, so column should come out
// slightly ahead and the tool must always pick it.
#include "common.hpp"

int main() {
  using namespace al;
  const std::vector<int> procs = {2, 4, 8, 16, 32};
  std::printf("== Figure 7: Shallow 384x384 real (seconds) ==\n\n");
  bench::SeriesResult sr = bench::run_series(procs, [](int p) {
    return corpus::TestCase{"shallow", 384, corpus::Dtype::Real, p};
  });
  bench::print_series(procs, sr.rows);
  std::printf("\ntool picks:%s\n", sr.picks.c_str());
  return 0;
}
