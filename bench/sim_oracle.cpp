// Simulator-as-oracle benchmark (DESIGN.md section 16): the closed-loop
// grading of the estimator the paper could only do by timing node programs
// on a physical iPSC/860 (section 4). Two experiments go to BENCH_sim.json:
//
//  1. VALIDATION -- the four corpus programs plus a generated scaling
//     series (8..64+ phases) run with oracle validation: per-program
//     predicted-vs-simulated error of the chosen layout, pairwise ranking
//     inversions over the sampled rival assignments, and the
//     chosen-vs-rival verdict. ANY rival the simulator ranks more than the
//     margin below the chosen layout FAILS the benchmark (exit 1).
//
//  2. CALIBRATION -- oracle::calibrate_machine sweeps the pattern simulator
//     over the full (pattern x procs x bytes x stride x latency) grid, fits
//     TrainingEntry tables by least squares in TrainingSetDB::lookup's
//     interpolation model, and the calibrated model (a) round-trips through
//     machine::io byte-exactly, (b) yields verified selections on the whole
//     corpus, (c) reports its fit residuals. Any failure exits 1.
//
//   ./build/bench/sim_oracle [rivals]   (default 8)
//   ./build/bench/sim_oracle --smoke    tiny cases, 3 rivals (ctest)
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "corpus/corpus.hpp"
#include "driver/tool.hpp"
#include "gen/generator.hpp"
#include "gen/rng.hpp"
#include "machine/io.hpp"
#include "oracle/calibrate.hpp"
#include "support/json.hpp"
#include "support/metrics.hpp"
#include "support/text.hpp"

namespace {

using al::corpus::Dtype;
using al::corpus::TestCase;

struct ValidationRow {
  std::string name;
  int phases = 0;
  int rivals = 0;
  double predicted_us = 0.0;
  double simulated_us = 0.0;
  double total_rel_error = 0.0;
  double mean_abs_phase_error = 0.0;
  double max_abs_phase_error = 0.0;
  int pairs = 0;
  int inversions = 0;
  int chosen_inversions = 0;
  double worst_rival_gap = 0.0;
  bool ok = false;
};

ValidationRow row_from(const std::string& name, const al::driver::ToolResult& r) {
  const al::oracle::ValidationReport& o = r.oracle;
  ValidationRow row;
  row.name = name;
  row.phases = r.pcfg.num_phases();
  row.rivals = static_cast<int>(o.rivals.size());
  row.predicted_us = o.chosen.predicted_us;
  row.simulated_us = o.chosen.simulated_us;
  row.total_rel_error = o.total_rel_error;
  row.mean_abs_phase_error = o.mean_abs_phase_error;
  row.max_abs_phase_error = o.max_abs_phase_error;
  row.pairs = o.pairs;
  row.inversions = o.inversions;
  row.chosen_inversions = o.chosen_inversions;
  row.worst_rival_gap = o.worst_rival_gap;
  row.ok = o.ok;
  return row;
}

void write_row(al::support::JsonWriter& w, const ValidationRow& r) {
  w.begin_object();
  w.kv("name", r.name);
  w.kv("phases", r.phases);
  w.kv("rivals", r.rivals);
  w.kv("predicted_us", r.predicted_us);
  w.kv("simulated_us", r.simulated_us);
  w.kv("total_rel_error", r.total_rel_error);
  w.kv("mean_abs_phase_error", r.mean_abs_phase_error);
  w.kv("max_abs_phase_error", r.max_abs_phase_error);
  w.kv("pairs", r.pairs);
  w.kv("inversions", r.inversions);
  w.kv("inversion_rate",
       r.pairs > 0 ? static_cast<double>(r.inversions) / r.pairs : 0.0);
  w.kv("chosen_inversions", r.chosen_inversions);
  w.kv("worst_rival_gap", r.worst_rival_gap);
  w.kv("ok", r.ok);
  w.end_object();
}

} // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int rivals = 8;
  if (argc > 1) {
    if (std::string(argv[1]) == "--smoke") {
      smoke = true;
      rivals = 3;
    } else if (!al::parse_int(argv[1], 0, 4096, rivals)) {
      std::fprintf(stderr, "usage: %s [rivals | --smoke]\n", argv[0]);
      return 1;
    }
  }

  al::support::Metrics::instance().reset();
  bool all_ok = true;

  al::driver::ToolOptions opts;
  opts.threads = 1;
  opts.validate = true;
  opts.validate_rivals = rivals;

  // --- 1. Validation: corpus + generated scaling series -------------------
  const std::vector<TestCase> cases =
      smoke ? std::vector<TestCase>{{"adi", 32, Dtype::DoublePrecision, 4},
                                    {"erlebacher", 16, Dtype::DoublePrecision, 4},
                                    {"tomcatv", 32, Dtype::DoublePrecision, 4},
                                    {"shallow", 32, Dtype::Real, 4}}
            : std::vector<TestCase>{{"adi", 256, Dtype::DoublePrecision, 16},
                                    {"erlebacher", 64, Dtype::DoublePrecision, 16},
                                    {"tomcatv", 128, Dtype::DoublePrecision, 16},
                                    {"shallow", 256, Dtype::Real, 16}};
  std::vector<ValidationRow> corpus_rows;
  for (const TestCase& c : cases) {
    opts.procs = c.procs;
    const auto tool = al::driver::run_tool(al::corpus::source_for(c), opts);
    corpus_rows.push_back(row_from(c.name(), *tool));
    const ValidationRow& row = corpus_rows.back();
    all_ok = all_ok && row.ok;
    std::printf("%-28s phases %3d  err %+6.1f%%  inversions %d/%d  %s\n",
                row.name.c_str(), row.phases, row.total_rel_error * 100.0,
                row.inversions, row.pairs, row.ok ? "ok" : "CHOSEN-INVERSION");
  }

  const std::vector<int> scaling_sizes =
      smoke ? std::vector<int>{8} : std::vector<int>{8, 16, 32, 64, 80};
  std::vector<ValidationRow> generated_rows;
  opts.procs = 16;
  for (const int size : scaling_sizes) {
    al::gen::Rng rng(2000 + static_cast<std::uint64_t>(size));
    al::gen::GenOptions gopts;
    gopts.min_phases = gopts.max_phases = size;
    gopts.max_arrays = 6;
    const auto tool = al::driver::run_tool(al::gen::random_program(rng, gopts), opts);
    generated_rows.push_back(row_from("gen-" + std::to_string(size), *tool));
    const ValidationRow& row = generated_rows.back();
    all_ok = all_ok && row.ok;
    std::printf("%-28s phases %3d  err %+6.1f%%  inversions %d/%d  %s\n",
                row.name.c_str(), row.phases, row.total_rel_error * 100.0,
                row.inversions, row.pairs, row.ok ? "ok" : "CHOSEN-INVERSION");
  }

  // --- 2. Calibration: sweep + fit + io round-trip + corpus re-selection --
  const al::oracle::CalibrationOptions copts =
      smoke ? al::oracle::CalibrationOptions::smoke()
            : al::oracle::CalibrationOptions{};
  const al::oracle::CalibrationResult cal =
      al::oracle::calibrate_machine(al::machine::make_ipsc860(), copts);
  std::printf("calibration: %d entries from %d probes, rms residual %.2f%%, "
              "max %.2f%%\n",
              cal.entries, cal.measurements, cal.rms_rel_residual * 100.0,
              cal.max_rel_residual * 100.0);

  // machine::io round-trip: format -> parse -> format must be byte-stable
  // and preserve every entry.
  bool io_roundtrip = true;
  {
    const std::string text = al::machine::format_training_sets(cal.model.training);
    al::DiagnosticEngine diags;
    const al::machine::TrainingSetDB parsed =
        al::machine::parse_training_sets(text, diags);
    io_roundtrip = !diags.has_errors() &&
                   parsed.size() == cal.model.training.size() &&
                   al::machine::format_training_sets(parsed) == text;
    if (!io_roundtrip) {
      std::fprintf(stderr, "%s: calibrated model does NOT round-trip machine::io\n",
                   argv[0]);
      all_ok = false;
    }
  }

  // Re-run the corpus under the calibrated model: every selection must pass
  // the independent checker and the oracle's chosen-vs-rival gate.
  std::vector<ValidationRow> calibrated_rows;
  bool calibrated_verified = true;
  {
    al::driver::ToolOptions copts2 = opts;
    copts2.machine = cal.model;
    for (const TestCase& c : cases) {
      copts2.procs = c.procs;
      const auto tool = al::driver::run_tool(al::corpus::source_for(c), copts2);
      calibrated_rows.push_back(row_from(c.name(), *tool));
      calibrated_verified = calibrated_verified && tool->verification.ok;
      all_ok = all_ok && calibrated_rows.back().ok && tool->verification.ok;
    }
    std::printf("calibrated model: %zu corpus selections %s\n", cases.size(),
                calibrated_verified ? "verified" : "FAILED VERIFICATION");
  }

  std::ofstream out("BENCH_sim.json");
  al::support::JsonWriter w(out);
  w.begin_object();
  w.kv("bench", "sim_oracle");
  w.kv("schema_version", 1);
  w.kv("smoke", smoke);
  w.kv("rivals", rivals);
  w.kv("margin", opts.validate_margin);
  w.kv("sim_seed", static_cast<std::uint64_t>(opts.sim_seed));
  w.key("corpus").begin_array();
  for (const ValidationRow& r : corpus_rows) write_row(w, r);
  w.end_array();
  w.key("generated").begin_array();
  for (const ValidationRow& r : generated_rows) write_row(w, r);
  w.end_array();
  w.key("calibration").begin_object();
  w.kv("model", cal.model.name);
  w.kv("entries", cal.entries);
  w.kv("families", static_cast<std::uint64_t>(cal.families.size()));
  w.kv("probes", cal.measurements);
  w.kv("rms_rel_residual", cal.rms_rel_residual);
  w.kv("max_rel_residual", cal.max_rel_residual);
  w.kv("io_roundtrip", io_roundtrip);
  w.kv("corpus_selections_verified", calibrated_verified);
  w.key("corpus_under_calibrated_model").begin_array();
  for (const ValidationRow& r : calibrated_rows) write_row(w, r);
  w.end_array();
  // The worst-fit families, so a residual regression names its pattern.
  double worst = -1.0;
  const al::oracle::FamilyFit* worst_fit = nullptr;
  for (const al::oracle::FamilyFit& f : cal.families) {
    if (f.max_rel_residual > worst) {
      worst = f.max_rel_residual;
      worst_fit = &f;
    }
  }
  if (worst_fit != nullptr) {
    w.key("worst_family").begin_object();
    w.kv("pattern", al::machine::to_string(worst_fit->pattern));
    w.kv("procs", worst_fit->procs);
    w.kv("stride",
         worst_fit->stride == al::machine::Stride::Unit ? "unit" : "nonunit");
    w.kv("latency",
         worst_fit->latency == al::machine::LatencyClass::High ? "high" : "low");
    w.kv("max_rel_residual", worst_fit->max_rel_residual);
    w.end_object();
  }
  w.end_object();
  w.key("counters").begin_object();
  for (const auto& s : al::support::Metrics::instance().snapshot()) {
    if (!s.is_gauge) w.kv(s.name, s.count);
  }
  w.end_object();
  w.end_object();

  std::printf("wrote BENCH_sim.json\n");
  if (!all_ok) {
    std::fprintf(stderr,
                 "%s: oracle gate FAILED (chosen-vs-rival inversion, io "
                 "round-trip, or verification) -- see BENCH_sim.json\n",
                 argv[0]);
    return 1;
  }
  return 0;
}
