// ILP micro-benchmarks (google-benchmark): solve times of the actual 0-1
// instances the four programs generate -- alignment conflict resolution and
// data layout selection -- compared against the paper's CPLEX-on-SPARC-10
// numbers (Adi 60 ms, Erlebacher 120 ms, Tomcatv 480/1030 + 160 ms,
// Shallow 150 ms; everything under 1.1 s).
#include <benchmark/benchmark.h>

#include "cag/builder.hpp"
#include "cag/ilp_formulation.hpp"
#include "corpus/corpus.hpp"
#include "driver/tool.hpp"
#include "ilp/branch_and_bound.hpp"
#include "ilp/simplex.hpp"
#include "select/ilp_selection.hpp"

namespace {

using namespace al;

std::unique_ptr<driver::ToolResult> tool_for(const std::string& prog, long n, int procs) {
  driver::ToolOptions opts;
  opts.procs = procs;
  corpus::TestCase c{prog, n, prog == "shallow" ? corpus::Dtype::Real
                                                : corpus::Dtype::DoublePrecision,
                     procs};
  return driver::run_tool(corpus::source_for(c), opts);
}

void BM_SelectionIlp(benchmark::State& state, const std::string& prog, long n) {
  auto tool = tool_for(prog, n, 16);
  for (auto _ : state) {
    select::SelectionResult r = select::select_layouts_ilp(tool->graph);
    benchmark::DoNotOptimize(r.total_cost_us);
  }
  state.counters["vars"] = tool->selection.ilp_variables;
  state.counters["constraints"] = tool->selection.ilp_constraints;
}

void BM_TomcatvAlignmentIlp(benchmark::State& state) {
  // Rebuild and resolve the conflicted merged CAG of Tomcatv's import step.
  auto tool = tool_for("tomcatv", 128, 16);
  // Re-run one conflicted resolution: merge the two class CAGs.
  const auto& classes = tool->alignment.partition.classes;
  if (classes.size() < 2) {
    state.SkipWithError("expected two phase classes");
    return;
  }
  cag::Cag merged = classes[0].cag;
  merged.merge_scaled(classes[1].cag, 1.0);
  if (!merged.has_conflict()) {
    state.SkipWithError("expected an alignment conflict");
    return;
  }
  for (auto _ : state) {
    cag::Resolution r = cag::resolve_alignment(merged, tool->templ.rank);
    benchmark::DoNotOptimize(r.satisfied_weight);
  }
  cag::AlignmentIlp form = cag::formulate_alignment_ilp(merged, tool->templ.rank);
  state.counters["vars"] = form.model.num_variables();
  state.counters["constraints"] = form.model.num_constraints();
}

/// Synthetic SELECTION-SHAPED 0-1 instances at the paper's problem scale:
/// `phases` one-of-K groups chained by transportation-style remap blocks --
/// the structure the paper's data layout selection instances actually have.
/// (Dense random packing instances of the same size are NP-hard in practice
/// for any branch-and-bound without cutting planes, and nothing the
/// framework ever generates.)
void BM_Synthetic01(benchmark::State& state) {
  const int phases = static_cast<int>(state.range(0));
  const int cands = static_cast<int>(state.range(1));
  std::uint64_t s = 0x243F6A8885A308D3ULL;
  auto rnd = [&s]() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  };
  ilp::Model m(ilp::Sense::Minimize);
  std::vector<std::vector<int>> x(static_cast<std::size_t>(phases));
  for (int p = 0; p < phases; ++p) {
    std::vector<ilp::Term> one;
    for (int i = 0; i < cands; ++i) {
      const int v = m.add_binary("x" + std::to_string(p) + "_" + std::to_string(i),
                                 static_cast<double>(rnd() % 1000));
      x[static_cast<std::size_t>(p)].push_back(v);
      one.push_back({v, 1.0});
    }
    m.add_constraint("one" + std::to_string(p), std::move(one), ilp::Rel::EQ, 1.0);
  }
  for (int p = 0; p + 1 < phases; ++p) {
    std::vector<std::vector<int>> y(static_cast<std::size_t>(cands));
    for (int i = 0; i < cands; ++i) {
      for (int j = 0; j < cands; ++j) {
        y[static_cast<std::size_t>(i)].push_back(m.add_continuous(
            "y" + std::to_string(p) + "_" + std::to_string(i) + std::to_string(j), 0.0,
            1.0, i == j ? 0.0 : static_cast<double>(rnd() % 500)));
      }
    }
    for (int i = 0; i < cands; ++i) {
      std::vector<ilp::Term> row;
      for (int j = 0; j < cands; ++j) row.push_back({y[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)], 1.0});
      row.push_back({x[static_cast<std::size_t>(p)][static_cast<std::size_t>(i)], -1.0});
      m.add_constraint("r" + std::to_string(p) + "_" + std::to_string(i), std::move(row),
                       ilp::Rel::EQ, 0.0);
      std::vector<ilp::Term> col;
      for (int j = 0; j < cands; ++j) col.push_back({y[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)], 1.0});
      col.push_back({x[static_cast<std::size_t>(p + 1)][static_cast<std::size_t>(i)], -1.0});
      m.add_constraint("c" + std::to_string(p) + "_" + std::to_string(i), std::move(col),
                       ilp::Rel::EQ, 0.0);
    }
  }
  for (auto _ : state) {
    ilp::MipResult r = ilp::solve_mip(m);
    benchmark::DoNotOptimize(r.objective);
  }
  state.counters["vars"] = m.num_variables();
  state.counters["constraints"] = m.num_constraints();
}

BENCHMARK_CAPTURE(BM_SelectionIlp, adi, std::string("adi"), 256L)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SelectionIlp, erlebacher, std::string("erlebacher"), 64L)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SelectionIlp, tomcatv, std::string("tomcatv"), 128L)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SelectionIlp, shallow, std::string("shallow"), 384L)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TomcatvAlignmentIlp)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Synthetic01)
    ->Args({9, 3})    // Adi-sized:     ~60 vars  (paper: 61 vars, 60 ms)
    ->Args({28, 3})   // Shallow-sized: ~250 vars (paper: 228 vars, 150 ms)
    ->Args({17, 4})   // Tomcatv-sized: ~330 vars (paper: 336 vars, 160 ms)
    ->Args({40, 3})   // Erlebacher-sized          (paper: 327 vars, 120 ms)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
