// MIP engine benchmark (DESIGN.md section 12): solves the ACTUAL 0-1
// instances the four corpus programs generate -- inter-dimensional alignment
// and data layout selection, the two problems the paper hands to CPLEX --
// once with the full engine (sparse revised-simplex core, dual-simplex warm
// starts, 0-1 presolve, pseudo-cost branching, root cuts, partial pricing,
// dominance pruning) and once with everything off (cold LPs, no presolve,
// most-fractional branching, no cuts, full pricing). A generated scaling
// series extends the curve to 256-phase programs; points up to 96 phases are
// additionally re-solved on the legacy dense-inverse core, whose selections
// must be identical to the sparse core's. Medians, total simplex iterations,
// per-node LP work, presolve reduction ratios, and sparse-vs-dense speedups
// go to BENCH_ilp.json (schema v3) in the working directory; any
// configuration disagreement, failed verification, or unproven optimum
// FAILS the benchmark (exit 1).
//
//   ./build/bench/ilp_solver [runs-per-config]   (default 5, min 5)
//   ./build/bench/ilp_solver --smoke             tiny instances, 1 run (ctest)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "cag/ilp_formulation.hpp"
#include "corpus/corpus.hpp"
#include "driver/tool.hpp"
#include "gen/generator.hpp"
#include "gen/rng.hpp"
#include "ilp/branch_and_bound.hpp"
#include "select/ilp_selection.hpp"
#include "select/verify.hpp"
#include "support/json.hpp"
#include "support/metrics.hpp"
#include "support/text.hpp"

namespace {

using al::corpus::Dtype;
using al::corpus::TestCase;
using Clock = std::chrono::steady_clock;

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

al::ilp::MipOptions cold_options() {
  al::ilp::MipOptions o;
  o.warm_start = false;
  o.presolve = false;
  o.branching = al::ilp::Branching::MostFractional;
  o.cuts = false;
  o.partial_pricing = false;
  return o;
}

/// One engine configuration's measurement of one instance family.
struct EngineStats {
  double median_ms = 0.0;
  long lp_iterations = 0;  ///< total simplex pivots (deterministic per config)
  long bb_nodes = 0;
  long warm_starts = 0;
  long warm_start_failures = 0;
  int presolve_fixed_vars = 0;
  int presolve_removed_rows = 0;
  int dominated_candidates = 0;
};

/// One point on the generated-instance scaling curve (DESIGN.md section 14):
/// a seeded random program of a requested phase count, its selection MIP
/// size, and the engine configurations' work on it. Three configurations
/// appear: the full warm engine on the sparse revised-simplex core (the
/// production path), the everything-off cold baseline, and the full engine
/// on the dense-inverse oracle core. The cold and dense runs are measured
/// only up to kDenseComparisonLimit phases -- past that the O(m^2)-per-pivot
/// dense core (and the cold per-node phase-1 re-solves) dominate wall time
/// without adding information; the large points are gated on proven
/// optimality of the sparse engine instead.
struct ScalingPoint {
  int phases = 0;
  int candidates = 0;
  int variables = 0;
  int constraints = 0;
  EngineStats cold;
  EngineStats warm;
  EngineStats dense;
  bool baseline_compared = false;    ///< cold + dense runs were measured
  bool objectives_match = true;
  bool selections_match = true;
  bool dense_objectives_match = true;
  bool dense_selections_match = true;
  bool verified = false;
  bool proven_optimal = false;       ///< sparse engine proved optimality
};

/// Largest phase count at which the dense oracle and the cold baseline are
/// still re-measured (and must agree with the sparse engine).
constexpr int kDenseComparisonLimit = 96;

struct ProgramReport {
  std::string program;
  // Selection MIP.
  int sel_variables = 0;
  int sel_constraints = 0;
  EngineStats sel_cold;
  EngineStats sel_warm;
  bool sel_objectives_match = false;
  bool sel_selections_match = false;
  bool sel_verified = false;
  // Alignment MIPs (all conflicted instances of the program).
  int align_models = 0;
  EngineStats align_cold;
  EngineStats align_warm;
  bool align_objectives_match = true;
};

/// Collects every conflicted alignment 0-1 model the program produces: one
/// per alignment class whose CAG carries an inter-dimensional conflict, plus
/// the merged two-class instance (Tomcatv's import step resolves that one).
std::vector<al::ilp::Model> alignment_models(const al::driver::ToolResult& tool) {
  std::vector<al::ilp::Model> models;
  const auto& classes = tool.alignment.partition.classes;
  for (const auto& cls : classes) {
    if (!cls.cag.has_conflict()) continue;
    models.push_back(
        al::cag::formulate_alignment_ilp(cls.cag, tool.templ.rank).model);
  }
  if (classes.size() >= 2) {
    al::cag::Cag merged = classes[0].cag;
    merged.merge_scaled(classes[1].cag, 1.0);
    if (merged.has_conflict()) {
      models.push_back(
          al::cag::formulate_alignment_ilp(merged, tool.templ.rank).model);
    }
  }
  return models;
}

void write_engine(al::support::JsonWriter& w, const char* key, const EngineStats& s) {
  w.key(key).begin_object();
  w.kv("median_ms", s.median_ms);
  w.kv("lp_iterations", s.lp_iterations);
  w.kv("bb_nodes", s.bb_nodes);
  w.kv("iterations_per_node",
       s.bb_nodes > 0 ? static_cast<double>(s.lp_iterations) /
                            static_cast<double>(s.bb_nodes)
                      : 0.0);
  w.kv("warm_starts", s.warm_starts);
  w.kv("warm_start_failures", s.warm_start_failures);
  w.kv("presolve_fixed_vars", s.presolve_fixed_vars);
  w.kv("presolve_removed_rows", s.presolve_removed_rows);
  w.kv("dominated_candidates", s.dominated_candidates);
  w.end_object();
}

} // namespace

int main(int argc, char** argv) {
  int runs = 5;
  bool smoke = false;
  if (argc > 1) {
    if (std::string(argv[1]) == "--smoke") {
      smoke = true;
      runs = 1;
    } else if (!al::parse_int(argv[1], 1, 1'000'000, runs)) {
      std::fprintf(stderr, "usage: %s [runs-per-config | --smoke]\n", argv[0]);
      return 1;
    }
  }
  if (!smoke) runs = std::max(runs, 5);

  const std::vector<TestCase> cases =
      smoke ? std::vector<TestCase>{{"adi", 32, Dtype::DoublePrecision, 4},
                                    {"tomcatv", 32, Dtype::DoublePrecision, 4}}
            : std::vector<TestCase>{{"adi", 256, Dtype::DoublePrecision, 16},
                                    {"erlebacher", 64, Dtype::DoublePrecision, 16},
                                    {"tomcatv", 128, Dtype::DoublePrecision, 16},
                                    {"shallow", 384, Dtype::Real, 16}};

  al::support::Metrics::instance().reset();
  std::vector<ProgramReport> reports;
  bool all_equivalent = true;

  for (const TestCase& c : cases) {
    al::driver::ToolOptions topts;
    topts.procs = c.procs;
    topts.threads = 1;
    const auto tool = al::driver::run_tool(al::corpus::source_for(c), topts);

    ProgramReport rep;
    rep.program = c.program;

    // --- Layout selection: full engine vs cold baseline ------------------
    al::select::SelectionOptions warm_sel;  // defaults = the full engine
    al::select::SelectionOptions cold_sel;
    cold_sel.mip = cold_options();
    cold_sel.dominance = false;

    al::select::SelectionResult warm_r;
    al::select::SelectionResult cold_r;
    for (const bool warm : {false, true}) {
      std::vector<double> samples;
      al::select::SelectionResult r;
      for (int i = 0; i < runs; ++i) {
        const auto t0 = Clock::now();
        r = al::select::select_layouts_ilp(tool->graph, warm ? warm_sel : cold_sel);
        samples.push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
      }
      EngineStats& s = warm ? rep.sel_warm : rep.sel_cold;
      s.median_ms = median(samples);
      s.lp_iterations = r.lp_iterations;
      s.bb_nodes = r.bb_nodes;
      s.warm_starts = r.warm_starts;
      s.warm_start_failures = r.warm_start_failures;
      s.presolve_fixed_vars = r.presolve_fixed_vars;
      s.presolve_removed_rows = r.presolve_removed_rows;
      s.dominated_candidates = r.dominated_candidates;
      (warm ? warm_r : cold_r) = std::move(r);
    }
    rep.sel_variables = cold_r.ilp_variables;
    rep.sel_constraints = cold_r.ilp_constraints;
    rep.sel_objectives_match =
        std::abs(warm_r.total_cost_us - cold_r.total_cost_us) <=
        1e-6 * (1.0 + std::abs(cold_r.total_cost_us));
    rep.sel_selections_match = warm_r.chosen == cold_r.chosen;
    rep.sel_verified = al::select::verify_assignment(tool->graph, warm_r).ok &&
                       al::select::verify_assignment(tool->graph, cold_r).ok;

    // --- Alignment: every conflicted 0-1 instance of the program ---------
    const std::vector<al::ilp::Model> models = alignment_models(*tool);
    rep.align_models = static_cast<int>(models.size());
    for (const bool warm : {false, true}) {
      EngineStats& s = warm ? rep.align_warm : rep.align_cold;
      std::vector<double> samples;
      for (int i = 0; i < runs; ++i) {
        long iters = 0;
        long nodes = 0;
        const auto t0 = Clock::now();
        for (const al::ilp::Model& m : models) {
          const al::ilp::MipResult r =
              al::ilp::solve_mip(m, warm ? al::ilp::MipOptions{} : cold_options());
          iters += r.lp_iterations;
          nodes += r.nodes;
          if (i == 0) {
            s.warm_starts += r.warm_starts;
            s.warm_start_failures += r.warm_start_failures;
            s.presolve_fixed_vars += r.presolve_fixed_vars;
            s.presolve_removed_rows += r.presolve_removed_rows;
          }
        }
        samples.push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
        s.lp_iterations = iters;
        s.bb_nodes = nodes;
      }
      s.median_ms = median(samples);
    }
    for (const al::ilp::Model& m : models) {
      const al::ilp::MipResult rc = al::ilp::solve_mip(m, cold_options());
      const al::ilp::MipResult rw = al::ilp::solve_mip(m);
      if (rc.status != rw.status ||
          std::abs(rc.objective - rw.objective) >
              1e-6 * (1.0 + std::abs(rc.objective))) {
        rep.align_objectives_match = false;
      }
    }

    all_equivalent = all_equivalent && rep.sel_objectives_match &&
                     rep.sel_selections_match && rep.sel_verified &&
                     rep.align_objectives_match;

    std::printf("%-12s selection %4d vars: cold %7.2f ms / %5ld it  warm %7.2f ms / %5ld it"
                "  (warm starts %ld, presolve -%d vars -%d rows, dominance -%d)%s\n",
                rep.program.c_str(), rep.sel_variables, rep.sel_cold.median_ms,
                rep.sel_cold.lp_iterations, rep.sel_warm.median_ms,
                rep.sel_warm.lp_iterations, rep.sel_warm.warm_starts,
                rep.sel_warm.presolve_fixed_vars, rep.sel_warm.presolve_removed_rows,
                rep.sel_warm.dominated_candidates,
                rep.sel_selections_match && rep.sel_verified ? "" : "  MISMATCH");
    if (rep.align_models > 0) {
      std::printf("%-12s alignment  %d model(s): cold %7.2f ms / %5ld it  warm %7.2f ms / %5ld it%s\n",
                  rep.program.c_str(), rep.align_models, rep.align_cold.median_ms,
                  rep.align_cold.lp_iterations, rep.align_warm.median_ms,
                  rep.align_warm.lp_iterations,
                  rep.align_objectives_match ? "" : "  MISMATCH");
    }
    reports.push_back(std::move(rep));
  }

  // --- Generated-instance scaling series (DESIGN.md section 14) ----------
  // Seeded random programs at growing phase counts: the corpus instances are
  // fixed-size, so this is the only view of how the selection MIP and the
  // engine configurations scale with program length. Same seed every run --
  // the curve is reproducible point for point. Up to kDenseComparisonLimit
  // phases every point is solved three ways (sparse warm engine, cold
  // baseline, dense-oracle warm engine) and all three must land on the same
  // verified selection; past it only the sparse engine runs, gated on
  // PROVEN optimality under the default budgets. The smoke lane includes a
  // >= 1000-variable instance (gen-96, 2000+ variables) so the sparse/dense
  // agreement gate runs at generator scale on every ctest pass.
  const std::vector<int> scaling_sizes =
      smoke ? std::vector<int>{8, 16, 96}
            : std::vector<int>{8, 16, 32, 64, 96, 128, 192, 256};
  std::vector<ScalingPoint> scaling;
  for (const int size : scaling_sizes) {
    al::gen::Rng rng(1000 + static_cast<std::uint64_t>(size));
    al::gen::GenOptions gopts;
    gopts.min_phases = gopts.max_phases = size;
    gopts.max_arrays = 6;
    al::driver::ToolOptions topts;
    topts.procs = 16;
    topts.threads = 1;
    // Deterministically skip structurally trivial draws (every phase with a
    // single candidate solves in zero pivots and measures nothing): keep
    // drawing from the same seeded stream until some phase has a real
    // choice. The legacy sizes' first draws are all non-trivial, so their
    // points are unchanged; gen-256's first draw is the known trivial one.
    std::unique_ptr<al::driver::ToolResult> tool;
    ScalingPoint pt;
    for (int attempt = 0; attempt < 8; ++attempt) {
      const std::string src = al::gen::random_program(rng, gopts);
      tool = al::driver::run_tool(src, topts);
      pt.candidates = 0;
      for (const auto& space : tool->spaces)
        pt.candidates += static_cast<int>(space.size());
      if (pt.candidates > tool->pcfg.num_phases()) break;
    }
    pt.phases = tool->pcfg.num_phases();
    pt.baseline_compared = size <= kDenseComparisonLimit;

    al::select::SelectionOptions warm_sel;  // defaults = sparse core, cuts on
    al::select::SelectionOptions cold_sel;
    cold_sel.mip = cold_options();
    cold_sel.dominance = false;
    al::select::SelectionOptions dense_sel;  // full engine, dense oracle core
    dense_sel.mip.lp_core = al::ilp::LpCore::Dense;

    enum Config { kCold, kWarm, kDense };
    al::select::SelectionResult warm_r, cold_r, dense_r;
    for (const Config cfg : {kCold, kWarm, kDense}) {
      if (cfg != kWarm && !pt.baseline_compared) continue;
      const al::select::SelectionOptions& sel =
          cfg == kWarm ? warm_sel : (cfg == kCold ? cold_sel : dense_sel);
      std::vector<double> samples;
      al::select::SelectionResult r;
      for (int i = 0; i < runs; ++i) {
        const auto t0 = Clock::now();
        r = al::select::select_layouts_ilp(tool->graph, sel);
        samples.push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
      }
      EngineStats& s = cfg == kWarm ? pt.warm : (cfg == kCold ? pt.cold : pt.dense);
      s.median_ms = median(samples);
      s.lp_iterations = r.lp_iterations;
      s.bb_nodes = r.bb_nodes;
      s.warm_starts = r.warm_starts;
      s.warm_start_failures = r.warm_start_failures;
      s.presolve_fixed_vars = r.presolve_fixed_vars;
      s.presolve_removed_rows = r.presolve_removed_rows;
      s.dominated_candidates = r.dominated_candidates;
      (cfg == kWarm ? warm_r : (cfg == kCold ? cold_r : dense_r)) = std::move(r);
    }
    pt.variables = warm_r.ilp_variables;
    pt.constraints = warm_r.ilp_constraints;
    pt.verified = al::select::verify_assignment(tool->graph, warm_r).ok;
    pt.proven_optimal =
        warm_r.solver_status == al::ilp::SolveStatus::Optimal &&
        warm_r.engine == al::select::SelectionEngine::Ilp;
    auto objectives_close = [](const al::select::SelectionResult& a,
                               const al::select::SelectionResult& b) {
      return std::abs(a.total_cost_us - b.total_cost_us) <=
             1e-6 * (1.0 + std::abs(b.total_cost_us));
    };
    if (pt.baseline_compared) {
      pt.objectives_match = objectives_close(warm_r, cold_r);
      pt.selections_match = warm_r.chosen == cold_r.chosen;
      pt.dense_objectives_match = objectives_close(warm_r, dense_r);
      pt.dense_selections_match = warm_r.chosen == dense_r.chosen;
      pt.verified = pt.verified &&
                    al::select::verify_assignment(tool->graph, cold_r).ok &&
                    al::select::verify_assignment(tool->graph, dense_r).ok;
    }
    // The gates: every configuration that ran must agree and verify, and
    // every point -- including the ones only the sparse engine solves --
    // must be proven optimal under the default budgets.
    all_equivalent = all_equivalent && pt.objectives_match &&
                     pt.selections_match && pt.dense_objectives_match &&
                     pt.dense_selections_match && pt.verified &&
                     pt.proven_optimal;

    if (pt.baseline_compared) {
      std::printf("gen-%-8d selection %4d vars: cold %7.2f ms / %5ld it  warm %7.2f ms / %5ld it"
                  "  dense %8.2f ms (sparse %0.2fx)%s\n",
                  pt.phases, pt.variables, pt.cold.median_ms,
                  pt.cold.lp_iterations, pt.warm.median_ms,
                  pt.warm.lp_iterations, pt.dense.median_ms,
                  pt.warm.median_ms > 0.0 ? pt.dense.median_ms / pt.warm.median_ms
                                          : 0.0,
                  pt.selections_match && pt.dense_selections_match && pt.verified &&
                          pt.proven_optimal
                      ? ""
                      : "  MISMATCH");
    } else {
      std::printf("gen-%-8d selection %4d vars: warm %7.2f ms / %5ld it (sparse only)%s\n",
                  pt.phases, pt.variables, pt.warm.median_ms,
                  pt.warm.lp_iterations,
                  pt.verified && pt.proven_optimal ? "" : "  NOT PROVEN OPTIMAL");
    }
    scaling.push_back(pt);
  }

  long cold_iters = 0;
  long warm_iters = 0;
  double cold_ms = 0.0;
  double warm_ms = 0.0;
  for (const ProgramReport& r : reports) {
    cold_iters += r.sel_cold.lp_iterations + r.align_cold.lp_iterations;
    warm_iters += r.sel_warm.lp_iterations + r.align_warm.lp_iterations;
    cold_ms += r.sel_cold.median_ms + r.align_cold.median_ms;
    warm_ms += r.sel_warm.median_ms + r.align_warm.median_ms;
  }
  const double reduction =
      warm_iters > 0 ? static_cast<double>(cold_iters) / static_cast<double>(warm_iters)
                     : 0.0;

  std::ofstream out("BENCH_ilp.json");
  al::support::JsonWriter w(out);
  w.begin_object();
  w.kv("bench", "ilp_engine");
  w.kv("schema_version", 3);
  w.kv("runs_per_config", runs);
  w.kv("smoke", smoke);
  w.kv("lp_core", "sparse (Markowitz LU + eta updates); dense inverse as oracle");
  w.kv("baseline",
       "cold LPs, no presolve, most-fractional branching, no dominance, "
       "no cuts, full pricing");
  w.kv("dense_comparison_limit_phases", kDenseComparisonLimit);
  w.key("results").begin_array();
  for (const ProgramReport& r : reports) {
    w.begin_object();
    w.kv("program", r.program);
    w.key("selection").begin_object();
    w.kv("variables", r.sel_variables);
    w.kv("constraints", r.sel_constraints);
    write_engine(w, "cold", r.sel_cold);
    write_engine(w, "warm", r.sel_warm);
    w.kv("objectives_match", r.sel_objectives_match);
    w.kv("selections_match", r.sel_selections_match);
    w.kv("verified", r.sel_verified);
    w.kv("speedup", r.sel_warm.median_ms > 0.0
                        ? r.sel_cold.median_ms / r.sel_warm.median_ms
                        : 0.0);
    w.kv("iteration_reduction",
         r.sel_warm.lp_iterations > 0
             ? static_cast<double>(r.sel_cold.lp_iterations) /
                   static_cast<double>(r.sel_warm.lp_iterations)
             : 0.0);
    w.end_object();
    w.key("alignment").begin_object();
    w.kv("models", r.align_models);
    write_engine(w, "cold", r.align_cold);
    write_engine(w, "warm", r.align_warm);
    w.kv("objectives_match", r.align_objectives_match);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("generated_scaling").begin_array();
  for (const ScalingPoint& p : scaling) {
    w.begin_object();
    w.kv("phases", p.phases);
    w.kv("candidates", p.candidates);
    w.kv("variables", p.variables);
    w.kv("constraints", p.constraints);
    w.kv("baseline_compared", p.baseline_compared);
    if (p.baseline_compared) {
      write_engine(w, "cold", p.cold);
    }
    write_engine(w, "warm", p.warm);
    if (p.baseline_compared) {
      write_engine(w, "dense", p.dense);
    }
    w.kv("objectives_match", p.objectives_match);
    w.kv("selections_match", p.selections_match);
    w.kv("dense_objectives_match", p.dense_objectives_match);
    w.kv("dense_selections_match", p.dense_selections_match);
    w.kv("verified", p.verified);
    w.kv("proven_optimal", p.proven_optimal);
    w.kv("speedup",
         p.warm.median_ms > 0.0 && p.baseline_compared
             ? p.cold.median_ms / p.warm.median_ms
             : 0.0);
    w.kv("sparse_vs_dense_speedup",
         p.warm.median_ms > 0.0 && p.baseline_compared
             ? p.dense.median_ms / p.warm.median_ms
             : 0.0);
    w.kv("iteration_reduction",
         p.warm.lp_iterations > 0 && p.baseline_compared
             ? static_cast<double>(p.cold.lp_iterations) /
                   static_cast<double>(p.warm.lp_iterations)
             : 0.0);
    w.end_object();
  }
  w.end_array();
  w.key("totals").begin_object();
  w.kv("cold_lp_iterations", cold_iters);
  w.kv("warm_lp_iterations", warm_iters);
  w.kv("iteration_reduction", reduction);
  w.kv("cold_ms", cold_ms);
  w.kv("warm_ms", warm_ms);
  w.kv("speedup", warm_ms > 0.0 ? cold_ms / warm_ms : 0.0);
  w.end_object();
  w.key("counters").begin_object();
  for (const auto& s : al::support::Metrics::instance().snapshot()) {
    if (!s.is_gauge) w.kv(s.name, s.count);
  }
  w.end_object();
  w.end_object();

  std::printf("\ntotal simplex iterations: cold %ld, warm %ld (%.2fx reduction)\n",
              cold_iters, warm_iters, reduction);
  std::printf("wrote BENCH_ilp.json\n");
  if (!all_equivalent) {
    std::fprintf(stderr, "%s: engine configurations DISAGREE -- see BENCH_ilp.json\n",
                 argv[0]);
    return 1;
  }
  return 0;
}
