// Ablation: the extended distribution search (the paper's future work --
// "We are currently extending our distribution analysis ... to handle
// multi-dimensional distributions"). For a 2-D stencil code at scale, a
// BLOCK x BLOCK processor mesh trades one big boundary exchange for two
// small ones: the surface-to-volume effect the 1-D prototype cannot see.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace al;
  const std::vector<int> procs = {16, 32, 64};
  std::printf("== Extended-search ablation: Shallow 512x512 real ==\n\n");
  std::printf("%s%s%s%s\n", pad_right("procs", 8).c_str(),
              pad_left("1-D search est (s)", 20).c_str(),
              pad_left("extended est (s)", 20).c_str(),
              pad_left("extended pick", 28).c_str());
  for (int p : procs) {
    corpus::TestCase c{"shallow", 512, corpus::Dtype::Real, p};
    driver::ToolOptions basic;
    basic.procs = p;
    driver::ToolOptions ext = basic;
    ext.distribution_strategy = distrib::Strategy::ExtendedExhaustive;
    auto tb = driver::run_tool(corpus::source_for(c), basic);
    auto te = driver::run_tool(corpus::source_for(c), ext);
    // Describe the extended run's dominant distribution choice.
    const layout::Distribution& d = te->chosen_layout(5).distribution();
    std::printf("%s%s%s%s\n", pad_right("P=" + std::to_string(p), 8).c_str(),
                pad_left(format_fixed(tb->selection.total_cost_us / 1e6, 3), 20).c_str(),
                pad_left(format_fixed(te->selection.total_cost_us / 1e6, 3), 20).c_str(),
                pad_left(d.str(), 28).c_str());
  }
  std::printf("\n(the extended space is a superset of the 1-D space, so its\n"
              " optimum is never worse; 2-D meshes win once the per-processor\n"
              " boundary shrinks faster than the extra message startup costs)\n");
  return 0;
}
