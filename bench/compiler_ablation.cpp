// Ablation over the compiler model's parameters (the framework is
// "parameterized with respect to the HPF compiler", section 1): what the
// estimator predicts for the same program and layout when the target
// compiler loses message vectorization and/or message coalescing. The gap
// shows why modelling the *right* target compiler matters: the best layout
// is only best relative to the compiler.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace al;
  struct Config {
    const char* name;
    bool vectorize;
    bool coalesce;
  };
  const Config configs[] = {
      {"vectorize + coalesce (paper)", true, true},
      {"vectorize only", true, false},
      {"coalesce only", false, true},
      {"neither (naive compiler)", false, false},
  };

  std::printf("== Compiler-model ablation: Shallow 256x256 real, 16 procs ==\n\n");
  std::printf("%s%s%s\n", pad_right("compiler model", 32).c_str(),
              pad_left("row est (s)", 14).c_str(), pad_left("col est (s)", 14).c_str());
  for (const Config& cfg : configs) {
    driver::ToolOptions opts;
    opts.procs = 16;
    opts.compiler.message_vectorization = cfg.vectorize;
    opts.compiler.message_coalescing = cfg.coalesce;
    corpus::TestCase c{"shallow", 256, corpus::Dtype::Real, 16};
    bench::CaseRun run = bench::run_case(c, opts);
    double row = 0.0;
    double col = 0.0;
    for (const driver::Alternative& a : run.report.alternatives) {
      if (a.name.find("dim 1") != std::string::npos) row = a.est_us / 1e6;
      if (a.name.find("dim 2") != std::string::npos) col = a.est_us / 1e6;
    }
    std::printf("%s%s%s\n", pad_right(cfg.name, 32).c_str(),
                pad_left(format_fixed(row, 3), 14).c_str(),
                pad_left(format_fixed(col, 3), 14).c_str());
  }
  std::printf("\n(element-at-a-time messaging should inflate both layouts by "
              "orders of magnitude -- the optimizations are what make any "
              "distribution viable on a high-latency machine)\n");
  return 0;
}
