// Ablation: exact 0-1 conflict resolution (the paper's choice) versus the
// classic greedy heuristic. The paper argues for "capitalizing on 0-1
// integer programming technology" instead of "resorting to heuristics
// prematurely" -- this bench quantifies how much preference weight the
// greedy heuristic leaves on the table on random conflicted CAGs, and the
// runtime price of exactness.
#include <cstdio>

#include "cag/conflict.hpp"
#include "cag/greedy_resolution.hpp"
#include "fortran/parser.hpp"
#include "support/text.hpp"

namespace {

using namespace al;

/// Builds a program with `narrays` 2-D arrays (shared universe for CAGs).
fortran::Program make_program(int narrays) {
  std::string src = "      program ablation\n      parameter (n = 16)\n";
  for (int a = 0; a < narrays; ++a) {
    src += "      real arr" + std::to_string(a) + "(n,n)\n";
  }
  src += "      end\n";
  return fortran::parse_and_check(src);
}

std::uint64_t rng_state = 0x9E3779B97F4A7C15ULL;
std::uint64_t rnd() {
  rng_state ^= rng_state << 13;
  rng_state ^= rng_state >> 7;
  rng_state ^= rng_state << 17;
  return rng_state;
}

} // namespace

int main() {
  std::printf("== Ablation: optimal (0-1 ILP) vs greedy alignment conflict "
              "resolution ==\n\n");
  std::printf("%s%s%s%s%s\n", al::pad_right("instance", 22).c_str(),
              al::pad_left("ilp weight", 14).c_str(),
              al::pad_left("greedy weight", 16).c_str(),
              al::pad_left("greedy/opt", 12).c_str(),
              al::pad_left("ilp b&b nodes", 15).c_str());

  double worst_ratio = 1.0;
  int suboptimal = 0;
  const int kTrials = 24;
  for (int trial = 0; trial < kTrials; ++trial) {
    const int narrays = 3 + static_cast<int>(rnd() % 4);  // 3..6 arrays
    fortran::Program prog = make_program(narrays);
    const cag::NodeUniverse uni = cag::NodeUniverse::from_program(prog);
    cag::Cag g(&uni);
    // Random dense-ish preference edges with random weights; dense CAGs on
    // 2-D arrays conflict almost surely.
    const int edges = narrays * 3;
    for (int e = 0; e < edges; ++e) {
      const int a = static_cast<int>(rnd() % static_cast<std::uint64_t>(narrays));
      int b = static_cast<int>(rnd() % static_cast<std::uint64_t>(narrays));
      if (a == b) b = (b + 1) % narrays;
      const int da = static_cast<int>(rnd() % 2);
      const int db = static_cast<int>(rnd() % 2);
      const double w = 1.0 + static_cast<double>(rnd() % 1000);
      g.add_edge_weight(uni.index(a, da), uni.index(b, db), w, uni.index(a, da));
    }
    if (!g.has_conflict()) continue;

    cag::Resolution opt = cag::resolve_alignment(g, 2);
    cag::Resolution greedy = cag::resolve_alignment_greedy(g, 2);
    const double ratio =
        opt.satisfied_weight > 0 ? greedy.satisfied_weight / opt.satisfied_weight : 1.0;
    worst_ratio = std::min(worst_ratio, ratio);
    if (ratio < 1.0 - 1e-9) ++suboptimal;
    std::printf("%s%s%s%s%s\n",
                al::pad_right("random #" + std::to_string(trial), 22).c_str(),
                al::pad_left(al::format_fixed(opt.satisfied_weight, 0), 14).c_str(),
                al::pad_left(al::format_fixed(greedy.satisfied_weight, 0), 16).c_str(),
                al::pad_left(al::format_fixed(ratio, 3), 12).c_str(),
                al::pad_left(std::to_string(opt.bb_nodes), 15).c_str());
  }
  std::printf("\ngreedy suboptimal on %d instances; worst greedy/optimal ratio "
              "%.3f (1.000 = optimal)\n",
              suboptimal, worst_ratio);
  return 0;
}
