// Figure 6: Tomcatv, 128 x 128 double precision. Tomcatv has control flow
// inside its main loop; the paper shows estimates computed with the
// prototype's guessed 50% branch probability (bottom graph) against
// estimates using the actual probabilities (top) -- the guessed estimates
// sit visibly below the measured timings, the actual ones are closer.
//
// Measured numbers always come from the actual branch behaviour (the real
// program does not care what the estimator guessed).
#include "common.hpp"

int main() {
  using namespace al;
  const std::vector<int> procs = {2, 4, 8, 16, 32};

  std::printf("== Figure 6: Tomcatv 128x128 double precision (seconds) ==\n");
  std::printf("\n-- estimates with ACTUAL branch probabilities (annotated 0.95) --\n");
  driver::ToolOptions actual;
  actual.phase.use_annotated_probabilities = true;
  bench::SeriesResult sa = bench::run_series(
      procs,
      [](int p) { return corpus::TestCase{"tomcatv", 128, corpus::Dtype::DoublePrecision, p}; },
      actual);
  bench::print_series(procs, sa.rows);
  std::printf("tool picks:%s\n", sa.picks.c_str());

  std::printf("\n-- estimates with GUESSED 50%% branch probability (prototype default) --\n");
  driver::ToolOptions guessed;
  guessed.phase.use_annotated_probabilities = false;
  std::vector<bench::Series> rows;
  auto row_of = [&rows](const std::string& key) -> bench::Series& {
    for (auto& s : rows) {
      if (s.name == key) return s;
    }
    rows.push_back(bench::Series{key, {}, {}});
    return rows.back();
  };
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (std::size_t pi = 0; pi < procs.size(); ++pi) {
    corpus::TestCase c{"tomcatv", 128, corpus::Dtype::DoublePrecision, procs[pi]};
    bench::CaseRun g = bench::run_case(c, guessed);  // guessed estimates
    bench::CaseRun a = bench::run_case(c, actual);   // real measurements
    for (const driver::Alternative& alt : g.report.alternatives) {
      std::string key = alt.name;
      if (auto pos = key.find(" (BLOCK"); pos != std::string::npos) key = key.substr(0, pos);
      if (auto pos = key.find(" (*,"); pos != std::string::npos) key = key.substr(0, pos);
      // Matching measured value from the actual-probability run.
      double meas = nan;
      for (const driver::Alternative& am : a.report.alternatives) {
        std::string mk = am.name;
        if (auto pos = mk.find(" (BLOCK"); pos != std::string::npos) mk = mk.substr(0, pos);
        if (auto pos = mk.find(" (*,"); pos != std::string::npos) mk = mk.substr(0, pos);
        if (mk == key) {
          meas = am.meas_us / 1e6;
          break;
        }
      }
      bench::Series& s = row_of(key);
      s.est_s.resize(pi, nan);
      s.meas_s.resize(pi, nan);
      s.est_s.push_back(alt.est_us / 1e6);
      s.meas_s.push_back(meas);
    }
    for (auto& s : rows) {
      s.est_s.resize(pi + 1, nan);
      s.meas_s.resize(pi + 1, nan);
    }
  }
  bench::print_series(procs, rows);
  std::printf("(guessed estimates should sit below the measured values; the\n"
              " actual-probability estimates above are the closer ones)\n");
  return 0;
}
