// Figure 2 companion: prints the semi-lattice of inter-dimensional
// alignment information for two 2-D arrays a and b, then micro-benchmarks
// the lattice operations (refinement test, meet, join) whose linear-time
// behaviour the paper relies on.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "cag/cag.hpp"
#include "cag/lattice.hpp"
#include "fortran/parser.hpp"

namespace {

using namespace al;

/// Builds the two-array universe of figure 2.
fortran::Program two_arrays() {
  return fortran::parse_and_check(
      "      program fig2\n"
      "      parameter (n = 8)\n"
      "      real a(n,n), b(n,n)\n"
      "      end\n");
}

void print_figure2() {
  fortran::Program prog = two_arrays();
  const cag::NodeUniverse uni = cag::NodeUniverse::from_program(prog);
  // Enumerate every conflict-free partitioning of {a1,a2,b1,b2}: each of
  // a's dims may pair with at most one of b's dims.
  struct Element {
    const char* desc;
    std::vector<std::pair<int, int>> unions;  // (a-dim, b-dim)
  };
  const Element elems[] = {
      {"{a1 | a2 | b1 | b2}   (bottom: no information)", {}},
      {"{a1 b1 | a2 | b2}", {{0, 0}}},
      {"{a1 b2 | a2 | b1}", {{0, 1}}},
      {"{a2 b1 | a1 | b2}", {{1, 0}}},
      {"{a2 b2 | a1 | b1}", {{1, 1}}},
      {"{a1 b1 | a2 b2}   (canonical alignment)", {{0, 0}, {1, 1}}},
      {"{a1 b2 | a2 b1}   (transposed alignment)", {{0, 1}, {1, 0}}},
  };
  std::printf("== Figure 2: alignment-information lattice for two 2-D arrays ==\n\n");
  std::vector<cag::Partitioning> parts;
  for (const Element& e : elems) {
    cag::Partitioning p(uni.size());
    for (auto [ad, bd] : e.unions) p.unite(uni.index(0, ad), uni.index(1, bd));
    parts.push_back(p);
    std::printf("  %s\n", e.desc);
  }
  std::printf("\nrefinement relation ([=, row refines column):\n      ");
  for (std::size_t j = 0; j < parts.size(); ++j) std::printf("%3zu", j);
  std::printf("\n");
  for (std::size_t i = 0; i < parts.size(); ++i) {
    std::printf("  %3zu ", i);
    for (std::size_t j = 0; j < parts.size(); ++j)
      std::printf("%3s", parts[i].refines(parts[j]) ? "x" : ".");
    std::printf("\n");
  }
  std::printf("\n(element 0 -- the bottom -- refines everything; the two maximal\n"
              " elements 5 and 6 are the canonical and transposed alignments)\n\n");
}

void BM_Refines(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  cag::Partitioning a(n);
  cag::Partitioning b(n);
  for (int i = 0; i + 1 < n; i += 2) a.unite(i, i + 1);
  for (int i = 0; i + 3 < n; i += 4) {
    b.unite(i, i + 1);
    b.unite(i, i + 2);
    b.unite(i, i + 3);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.refines(b));
  }
}

void BM_Meet(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  cag::Partitioning a(n);
  cag::Partitioning b(n);
  for (int i = 0; i + 1 < n; i += 2) a.unite(i, i + 1);
  for (int i = 1; i + 1 < n; i += 2) b.unite(i, i + 1);
  for (auto _ : state) {
    cag::Partitioning m = cag::Partitioning::meet(a, b);
    benchmark::DoNotOptimize(m.num_blocks());
  }
}

void BM_Join(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  cag::Partitioning a(n);
  cag::Partitioning b(n);
  for (int i = 0; i + 1 < n; i += 2) a.unite(i, i + 1);
  for (int i = 1; i + 1 < n; i += 2) b.unite(i, i + 1);
  for (auto _ : state) {
    cag::Partitioning j = cag::Partitioning::join(a, b);
    benchmark::DoNotOptimize(j.num_blocks());
  }
}

BENCHMARK(BM_Refines)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(BM_Meet)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(BM_Join)->Arg(16)->Arg(256)->Arg(4096);

} // namespace

int main(int argc, char** argv) {
  print_figure2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
