// Perf baseline for the tool's dominant stage: times build_layout_graph on
// all four corpus programs at 1 / 2 / hardware-concurrency threads, with
// the estimator memo cache off and on, and writes the medians to
// BENCH_layout_graph.json (in the working directory). The serial no-cache
// configuration is the pre-concurrency code path, so every other row's
// `speedup` is measured against the tool's old behavior.
//
//   ./build/bench/layout_graph_bench [runs-per-config]   (default 5, min 5)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "corpus/corpus.hpp"
#include "driver/tool.hpp"
#include "select/layout_graph.hpp"
#include "support/json.hpp"
#include "support/metrics.hpp"
#include "support/text.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace {

using al::corpus::Dtype;
using al::corpus::TestCase;

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

struct Row {
  std::string program;
  int threads = 1;
  bool cache = false;
  double median_ms = 0.0;
  double node_ms = 0.0;
  double edge_ms = 0.0;
  int runs = 0;
  double speedup = 1.0;  // vs the serial no-cache row of the same program
};

double time_once(const al::driver::ToolResult& tool, int threads, bool cache,
                 al::select::GraphBuildStats* stats) {
  // The cache persists inside the estimator; toggling it off also clears
  // it, so every cached run starts cold and every uncached run is pure.
  tool.estimator->enable_cache(false);
  tool.estimator->enable_cache(cache);
  const auto t0 = std::chrono::steady_clock::now();
  al::select::LayoutGraph g;
  if (threads > 1) {
    al::support::ThreadPool pool(threads);
    g = al::select::build_layout_graph(*tool.estimator, tool.spaces, &pool, stats);
  } else {
    g = al::select::build_layout_graph(*tool.estimator, tool.spaces, nullptr, stats);
  }
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  if (g.num_phases() == 0) std::fprintf(stderr, "empty graph?!\n");
  return ms;
}

} // namespace

int main(int argc, char** argv) {
  int runs = 5;
  if (argc > 1 && !al::parse_int(argv[1], 1, 1'000'000, runs)) {
    std::fprintf(stderr, "usage: %s [runs-per-config]\n", argv[0]);
    return 1;
  }
  runs = std::max(runs, 5);  // median of >= 5, per the perf-baseline contract

  const std::vector<TestCase> cases = {
      {"adi", 256, Dtype::DoublePrecision, 16},
      {"erlebacher", 64, Dtype::DoublePrecision, 16},
      {"tomcatv", 128, Dtype::DoublePrecision, 16},
      {"shallow", 384, Dtype::Real, 16},
  };

  std::vector<int> thread_counts = {1, 2, al::support::ThreadPool::default_threads()};
  std::sort(thread_counts.begin(), thread_counts.end());
  thread_counts.erase(std::unique(thread_counts.begin(), thread_counts.end()),
                      thread_counts.end());

  std::vector<Row> rows;
  // One traced (non-timed) build per program, appended to the JSON so the
  // BENCH file carries span-level detail alongside the medians.
  std::vector<std::pair<std::string, std::vector<al::support::SpanRecord>>> traces;
  al::support::Metrics::instance().reset();
  for (const TestCase& c : cases) {
    // One frontend+alignment pass per program; the timed region is exactly
    // the estimation stage (run_tool is configured serial here, its own
    // graph build is not what we measure).
    al::driver::ToolOptions opts;
    opts.procs = c.procs;
    opts.threads = 1;
    auto tool = al::driver::run_tool(al::corpus::source_for(c), opts);

    double baseline_ms = 0.0;
    for (bool cache : {false, true}) {
      for (int threads : thread_counts) {
        Row row;
        row.program = c.program;
        row.threads = threads;
        row.cache = cache;
        row.runs = runs;
        std::vector<double> samples;
        std::vector<double> node_samples;
        std::vector<double> edge_samples;
        for (int r = 0; r < runs; ++r) {
          al::select::GraphBuildStats stats;
          samples.push_back(time_once(*tool, threads, cache, &stats));
          node_samples.push_back(stats.node_ms);
          edge_samples.push_back(stats.edge_ms);
        }
        row.median_ms = median(samples);
        row.node_ms = median(node_samples);
        row.edge_ms = median(edge_samples);
        if (!cache && threads == 1) baseline_ms = row.median_ms;
        row.speedup = row.median_ms > 0.0 ? baseline_ms / row.median_ms : 0.0;
        std::printf("%-12s threads=%d cache=%-3s  median %8.2f ms  (nodes %.2f, edges %.2f)  %5.2fx\n",
                    c.program.c_str(), threads, cache ? "on" : "off", row.median_ms,
                    row.node_ms, row.edge_ms, row.speedup);
        rows.push_back(std::move(row));
      }
    }

    // Timed samples are done (tracing stayed disabled for them); run one
    // traced build for the span detail.
    al::support::Tracer& tracer = al::support::Tracer::instance();
    tracer.set_enabled(true);
    tracer.reset();
    al::select::GraphBuildStats traced_stats;
    (void)time_once(*tool, al::support::ThreadPool::default_threads(), true,
                    &traced_stats);
    traces.emplace_back(c.program, tracer.snapshot());
    tracer.set_enabled(false);
  }

  std::ofstream out("BENCH_layout_graph.json");
  al::support::JsonWriter w(out);
  w.begin_object();
  w.kv("bench", "build_layout_graph");
  w.kv("schema_version", 1);
  w.kv("runs_per_config", runs);
  w.kv("hardware_threads", al::support::ThreadPool::default_threads());
  w.kv("baseline", "threads=1 cache=off (pre-concurrency code path)");
  w.key("results").begin_array();
  for (const Row& r : rows) {
    w.begin_object();
    w.kv("program", r.program);
    w.kv("threads", r.threads);
    w.kv("cache", r.cache);
    w.kv("median_ms", r.median_ms);
    w.kv("node_ms", r.node_ms);
    w.kv("edge_ms", r.edge_ms);
    w.kv("runs", r.runs);
    w.kv("speedup_vs_serial_nocache", r.speedup);
    w.end_object();
  }
  w.end_array();
  w.key("counters").begin_object();
  for (const auto& s : al::support::Metrics::instance().snapshot()) {
    if (!s.is_gauge) w.kv(s.name, s.count);
  }
  w.end_object();
  w.key("traced_builds").begin_array();
  for (const auto& [program, spans] : traces) {
    w.begin_object();
    w.kv("program", program);
    w.key("spans").begin_array();
    for (const al::support::SpanRecord& s : spans) {
      w.begin_object();
      w.kv("name", s.name);
      w.kv("start_us", static_cast<double>(s.start_ns) / 1e3);
      w.kv("dur_us", static_cast<double>(s.dur_ns) / 1e3);
      w.kv("thread", s.thread);
      w.kv("depth", static_cast<unsigned>(s.depth));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::printf("\nwrote BENCH_layout_graph.json\n");
  return 0;
}
