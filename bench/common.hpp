// Shared plumbing for the experiment benches: run one corpus test case
// through the tool, evaluate the paper's layout alternatives, and print
// figure-style tables.
#pragma once

#include <cstdio>
#include <limits>
#include <memory>
#include <string>

#include "corpus/corpus.hpp"
#include "driver/testcase.hpp"
#include "driver/tool.hpp"
#include "support/text.hpp"

namespace al::bench {

struct CaseRun {
  std::unique_ptr<driver::ToolResult> tool;
  driver::CaseReport report;
};

/// Runs the assistant tool + alternative evaluation for one test case.
inline CaseRun run_case(const corpus::TestCase& c,
                        const driver::ToolOptions& base = {}) {
  driver::ToolOptions opts = base;
  opts.procs = c.procs;
  CaseRun out;
  out.tool = driver::run_tool(corpus::source_for(c), opts);
  out.report = driver::evaluate_alternatives(*out.tool);
  return out;
}

/// One "figure" block: the alternatives table of a single test case.
inline void print_case(const corpus::TestCase& c, const driver::CaseReport& rep) {
  std::printf("---- %s ----\n%s\n", c.name().c_str(),
              driver::report_table(rep).c_str());
}

/// Figure 4/5/6/7 style: one series row per layout alternative, one column
/// per processor count, estimated and measured side by side.
struct Series {
  std::string name;
  std::vector<double> est_s;
  std::vector<double> meas_s;
};

inline void print_series(const std::vector<int>& procs, const std::vector<Series>& series) {
  auto cell = [](double v) {
    return v != v ? std::string("-") : format_fixed(v, 3);  // NaN -> "-"
  };
  std::printf("%s", pad_right("layout \\ procs", 30).c_str());
  for (int p : procs) std::printf("%14s", ("P=" + std::to_string(p)).c_str());
  std::printf("\n");
  for (const Series& s : series) {
    std::printf("%s", pad_right(s.name + " est", 30).c_str());
    for (double v : s.est_s) std::printf("%14s", cell(v).c_str());
    std::printf("\n");
    std::printf("%s", pad_right(s.name + " meas", 30).c_str());
    for (double v : s.meas_s) std::printf("%14s", cell(v).c_str());
    std::printf("\n");
  }
}

/// Runs one test case per processor count and lines the alternatives up as
/// series (missing combinations render as "-"). `make_case` maps a
/// processor count to the TestCase; tool picks are summarized in `picks`.
struct SeriesResult {
  std::vector<Series> rows;
  std::string picks;
};

template <typename MakeCase>
SeriesResult run_series(const std::vector<int>& procs, MakeCase&& make_case,
                        const driver::ToolOptions& base = {}) {
  SeriesResult out;
  std::vector<std::string> order;
  auto row_of = [&](const std::string& key) -> Series& {
    for (Series& s : out.rows) {
      if (s.name == key) return s;
    }
    out.rows.push_back(Series{key, {}, {}});
    return out.rows.back();
  };
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (std::size_t pi = 0; pi < procs.size(); ++pi) {
    corpus::TestCase c = make_case(procs[pi]);
    CaseRun run = run_case(c, base);
    for (const driver::Alternative& a : run.report.alternatives) {
      std::string key = a.name;
      if (auto pos = key.find(" (BLOCK"); pos != std::string::npos) key = key.substr(0, pos);
      if (auto pos = key.find(" (*,"); pos != std::string::npos) key = key.substr(0, pos);
      Series& s = row_of(key);
      s.est_s.resize(pi, nan);
      s.meas_s.resize(pi, nan);
      s.est_s.push_back(a.est_us / 1e6);
      s.meas_s.push_back(a.meas_us / 1e6);
      if (a.is_tool_choice)
        out.picks += " P=" + std::to_string(procs[pi]) + ":" + key + ";";
    }
    for (Series& s : out.rows) {
      s.est_s.resize(pi + 1, nan);
      s.meas_s.resize(pi + 1, nan);
    }
  }
  return out;
}

} // namespace al::bench
