// Figure 5: Erlebacher, 64^3 double precision -- the four alternatives of
// the paper: distribute dim 1 (fine-grain pipeline, never profitable),
// dim 2 (coarse-grain pipeline), dim 3 (one sweep sequentialized), and the
// dynamic layout remapping the shared read-only array once between a pair
// of symmetric sweeps. The paper reports the dim-3 estimate visibly above
// its measurement and dim2-vs-dynamic too close to always rank correctly.
#include "common.hpp"

int main() {
  using namespace al;
  const std::vector<int> procs = {2, 4, 8, 16, 32, 64, 128};
  std::printf("== Figure 5: Erlebacher 64x64x64 double precision (seconds) ==\n\n");
  bench::SeriesResult sr = bench::run_series(procs, [](int p) {
    return corpus::TestCase{"erlebacher", 64, corpus::Dtype::DoublePrecision, p};
  });
  bench::print_series(procs, sr.rows);
  std::printf("\ntool picks:%s\n", sr.picks.c_str());
  return 0;
}
