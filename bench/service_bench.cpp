// Serving-layer throughput/latency baseline (DESIGN.md sections 11 and 13):
// drives Server::run_batch over corpus request mixes and writes the medians
// to BENCH_service.json (in the working directory). Four scenarios:
//
//   * compute  -- every request is a real pipeline run, back to back. On a
//     multi-core host this is where worker scaling shows up; on a
//     single-core host (the CI container: hardware_concurrency is recorded
//     in the output) compute-bound throughput cannot exceed 1x and the
//     row documents exactly that.
//   * mixed    -- each request carries think-time (the protocol's delay_ms
//     field) alongside the compute, the shape of a layout service embedded
//     in a build system that interleaves I/O-bound work. Workers overlap
//     the waits, so this row demonstrates the concurrency the queue and
//     worker pool actually buy even when cores are scarce.
//   * repeat90 / repeat98 -- the whole-run result cache's scenarios: ~90%
//     (resp. ~98%) of requests repeat an already-submitted (program,
//     options) triple and are served from the cache, the rest are fresh
//     keys that must compute. Hit and miss latency quantiles are reported
//     separately, plus the throughput multiple over this run's compute
//     1-worker row (the cache's whole value proposition: repeats cost a
//     hash, not a pipeline).
//
// Before writing the report the bench VERIFIES the cache's contract: the
// report served by a hit must match a cold (fresh-server) run of the same
// request on every semantically meaningful section -- everything except the
// wall-clock/observability blocks (stages, estimator_cache occupancy,
// metrics, trace, selection solve time). A mismatch exits nonzero; the
// service.cache_smoke ctest runs exactly this under --smoke.
//
//   ./build/bench/service_bench [--smoke] [--verify-cache] [runs-per-config]
//   (default 3 runs per config; --verify-cache = contract check only, the
//   service.cache_smoke ctest)
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "corpus/corpus.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "support/json.hpp"
#include "support/json_parse.hpp"
#include "support/text.hpp"

namespace {

using al::corpus::Dtype;
using al::corpus::TestCase;
using al::support::JsonValue;

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

std::vector<TestCase> corpus_mix() {
  return {{"adi", 32, Dtype::DoublePrecision, 4},
          {"erlebacher", 16, Dtype::DoublePrecision, 4},
          {"tomcatv", 32, Dtype::DoublePrecision, 4},
          {"shallow", 32, Dtype::Real, 4}};
}

std::string request_line(const TestCase& c, const std::string& id,
                         long delay_ms = 0) {
  std::ostringstream os;
  al::support::JsonWriter w(os, /*indent_width=*/-1);
  w.begin_object();
  w.kv("schema", al::service::kRequestSchema);
  w.kv("schema_version", al::service::kProtocolVersion);
  w.kv("id", id);
  w.kv("source", al::corpus::source_for(c));
  if (delay_ms > 0) w.kv("delay_ms", delay_ms);
  w.key("options").begin_object();
  w.kv("procs", c.procs);
  w.end_object();
  w.end_object();
  return os.str();
}

/// NDJSON input of `count` requests round-robining over the corpus mix.
std::string make_input(int count, long delay_ms) {
  const std::vector<TestCase> mix = corpus_mix();
  std::string input;
  for (int i = 0; i < count; ++i) {
    const TestCase& c = mix[static_cast<std::size_t>(i) % mix.size()];
    input += request_line(c, c.program + "-" + std::to_string(i), delay_ms);
  }
  return input;
}

/// Cache-scenario input: every `unique_every`-th request is a FRESH
/// (program, n, procs) triple nobody submitted before (a guaranteed cache
/// miss); everything else repeats the 4-program working set (hits once the
/// working set is warm). unique_every = 10 gives the ~90% repeat mix,
/// 50 the ~98% one.
std::string make_repeat_input(int count, int unique_every) {
  const std::vector<TestCase> mix = corpus_mix();
  std::string input;
  int fresh = 0;
  for (int i = 0; i < count; ++i) {
    if (i % unique_every == 0) {
      // Vary n and procs so every fresh request is a distinct cache key.
      const TestCase unique{"adi", 16 + 4 * (fresh / 14),
                            Dtype::DoublePrecision, 2 + fresh % 14};
      input += request_line(unique, "fresh-" + std::to_string(fresh));
      ++fresh;
    } else {
      const TestCase& c = mix[static_cast<std::size_t>(i) % mix.size()];
      input += request_line(c, c.program + "-" + std::to_string(i));
    }
  }
  return input;
}

struct Row {
  std::string scenario;
  int workers = 0;
  int requests = 0;
  long delay_ms = 0;
  int runs = 0;
  double wall_ms = 0.0;
  double throughput_rps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  double speedup = 1.0;  // vs the 1-worker row of the same scenario
  // Run-cache scenarios only:
  bool cache_scenario = false;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  double hit_p50_ms = 0.0, hit_p95_ms = 0.0, hit_p99_ms = 0.0;
  double miss_p50_ms = 0.0, miss_p95_ms = 0.0, miss_p99_ms = 0.0;
  double speedup_vs_compute_1w = 0.0;   // vs this run's compute 1-worker row
  double speedup_vs_pr4_baseline = 0.0; // vs the recorded PR-4 single-worker
                                        // compute baseline (the >= 10x target)
};

/// The committed single-worker compute throughput the run cache was built
/// against (BENCH_service.json before this change, hardware_concurrency 1).
constexpr double kPr4Compute1wBaselineRps = 79.66821032;

Row run_config(const std::string& scenario, const std::string& input,
               int workers, int requests, long delay_ms, int runs) {
  Row row;
  row.scenario = scenario;
  row.workers = workers;
  row.requests = requests;
  row.delay_ms = delay_ms;
  row.runs = runs;

  std::vector<double> walls, p50s, p95s, p99s, maxs;
  std::vector<double> hit50s, hit95s, hit99s, miss50s, miss95s, miss99s;
  for (int r = 0; r < runs; ++r) {
    al::service::ServerOptions opts;
    opts.workers = workers;
    opts.queue_capacity = static_cast<std::size_t>(requests) + 1;
    al::service::Server server(opts);
    std::istringstream in(input);
    std::ostringstream out;
    if (server.run_batch(in, out) != 0) {
      std::fprintf(stderr, "service_bench: batch run failed\n");
      std::exit(1);
    }
    const al::service::ServiceSummary s = server.summary();
    if (s.ok != static_cast<std::uint64_t>(requests)) {
      std::fprintf(stderr, "service_bench: %llu/%d requests ok\n",
                   static_cast<unsigned long long>(s.ok), requests);
      std::exit(1);
    }
    walls.push_back(s.wall_ms);
    p50s.push_back(s.p50_ms);
    p95s.push_back(s.p95_ms);
    p99s.push_back(s.p99_ms);
    maxs.push_back(s.max_ms);
    hit50s.push_back(s.hit_p50_ms);
    hit95s.push_back(s.hit_p95_ms);
    hit99s.push_back(s.hit_p99_ms);
    miss50s.push_back(s.miss_p50_ms);
    miss95s.push_back(s.miss_p95_ms);
    miss99s.push_back(s.miss_p99_ms);
    row.cache_hits = s.cache_hits;    // deterministic per input; last run's
    row.cache_misses = s.cache_misses;
  }
  row.wall_ms = median(walls);
  row.throughput_rps =
      row.wall_ms > 0.0 ? static_cast<double>(requests) / (row.wall_ms / 1e3) : 0.0;
  row.p50_ms = median(p50s);
  row.p95_ms = median(p95s);
  row.p99_ms = median(p99s);
  row.max_ms = median(maxs);
  row.hit_p50_ms = median(hit50s);
  row.hit_p95_ms = median(hit95s);
  row.hit_p99_ms = median(hit99s);
  row.miss_p50_ms = median(miss50s);
  row.miss_p95_ms = median(miss95s);
  row.miss_p99_ms = median(miss99s);
  return row;
}

// ---------------------------------------------------------------------------
// Hit-vs-cold verification
// ---------------------------------------------------------------------------

/// Canonical serialization of a report with the volatile (wall-clock and
/// observability) parts removed: the top-level stages/estimator_cache/
/// metrics/trace sections and the selection's solve_ms. What remains is the
/// semantic payload -- layouts, costs, provenance -- which a cache hit must
/// reproduce exactly.
void semantic_subset(const JsonValue& v, std::string& out, int depth = 0) {
  switch (v.kind()) {
    case JsonValue::Kind::Object: {
      out += '{';
      bool first = true;
      for (const auto& [key, val] : v.members()) {
        if (depth == 0 && (key == "stages" || key == "estimator_cache" ||
                           key == "counters" || key == "gauges" ||
                           key == "trace"))
          continue;
        if (key == "solve_ms") continue;
        if (!first) out += ',';
        first = false;
        out += '"';
        out += key;
        out += "\":";
        semantic_subset(val, out, depth + 1);
      }
      out += '}';
      return;
    }
    case JsonValue::Kind::Array: {
      out += '[';
      bool first = true;
      for (const JsonValue& item : v.items()) {
        if (!first) out += ',';
        first = false;
        semantic_subset(item, out, depth + 1);
      }
      out += ']';
      return;
    }
    case JsonValue::Kind::String:
      out += '"';
      out += al::support::JsonWriter::escape(v.as_string());
      out += '"';
      return;
    case JsonValue::Kind::Number:
      out += v.number_lexeme();
      return;
    case JsonValue::Kind::Bool:
      out += v.as_bool() ? "true" : "false";
      return;
    case JsonValue::Kind::Null:
      out += "null";
      return;
  }
}

/// One batch -> parsed responses in input order.
std::vector<JsonValue> run_lines(const std::string& input) {
  al::service::ServerOptions opts;
  opts.workers = 1;
  al::service::Server server(opts);
  std::istringstream in(input);
  std::ostringstream out;
  if (server.run_batch(in, out) != 0) {
    std::fprintf(stderr, "service_bench: verification batch failed\n");
    std::exit(1);
  }
  std::vector<JsonValue> docs;
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    JsonValue doc;
    std::string error;
    if (!JsonValue::parse(line, doc, error)) {
      std::fprintf(stderr, "service_bench: bad response JSON: %s\n", error.c_str());
      std::exit(1);
    }
    docs.push_back(std::move(doc));
  }
  return docs;
}

std::string report_subset(const JsonValue& response, const char* what) {
  const JsonValue* report = response.find("report");
  if (report == nullptr) {
    std::fprintf(stderr, "service_bench: %s response carries no report\n", what);
    std::exit(1);
  }
  std::string subset;
  semantic_subset(*report, subset);
  return subset;
}

/// The acceptance check: a hit-served report equals a COLD run's report
/// (fresh server, so a genuinely independent compute) on the semantic
/// subset, for every corpus program. Exits nonzero on any divergence.
void verify_hit_matches_cold() {
  for (const TestCase& c : corpus_mix()) {
    // Fresh server: one cold compute.
    const std::vector<JsonValue> cold = run_lines(request_line(c, "cold"));
    // Second fresh server: the same request twice; the repeat is the hit.
    const std::vector<JsonValue> pair =
        run_lines(request_line(c, "w") + request_line(c, "h"));
    if (cold.size() != 1 || pair.size() != 2) {
      std::fprintf(stderr, "service_bench: verification got %zu+%zu responses\n",
                   cold.size(), pair.size());
      std::exit(1);
    }
    const JsonValue* disposition = pair[1].find("cache");
    if (disposition == nullptr || disposition->as_string() != "hit") {
      std::fprintf(stderr, "service_bench: %s repeat was not served as a hit\n",
                   c.program.c_str());
      std::exit(1);
    }
    const std::string cold_subset = report_subset(cold[0], "cold");
    const std::string hit_subset = report_subset(pair[1], "hit");
    if (cold_subset != hit_subset) {
      // Leave the full payloads on disk for diagnosis.
      std::ofstream("cache_verify_cold.json") << cold_subset << '\n';
      std::ofstream("cache_verify_hit.json") << hit_subset << '\n';
      std::fprintf(stderr,
                   "service_bench: %s hit report DIVERGES from cold run "
                   "(full subsets in cache_verify_{cold,hit}.json)\n"
                   "  cold: %.200s...\n  hit:  %.200s...\n",
                   c.program.c_str(), cold_subset.c_str(), hit_subset.c_str());
      std::exit(1);
    }
    std::printf("verify   %-10s hit report == cold report (%zu bytes compared)\n",
                c.program.c_str(), cold_subset.size());
  }
}

} // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool verify_only = false;
  int runs = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--verify-cache") == 0) {
      // The service.cache_smoke ctest: just the hit-vs-cold contract plus a
      // tiny repeat mix, no BENCH_service.json rewrite.
      verify_only = true;
      smoke = true;
    } else if (!al::parse_int(argv[i], 1, 1'000'000, runs)) {
      // Strict whole-lexeme parse: "3x" or "abc" is a usage error, not 3 or
      // a silent 1 the way atoi would have it.
      std::fprintf(stderr,
                   "usage: service_bench [--smoke] [--verify-cache] [runs]\n"
                   "  runs must be an integer in [1, 1000000], got \"%s\"\n",
                   argv[i]);
      return 1;
    }
  }
  if (verify_only) {
    verify_hit_matches_cold();
    const int n = 20;
    Row row = run_config("repeat90", make_repeat_input(n, 10), 1, n, 0, 1);
    if (row.cache_hits == 0) {
      std::fprintf(stderr, "service_bench: repeat mix produced no cache hits\n");
      return 1;
    }
    std::printf("cache verification ok (%llu hits / %llu misses in repeat mix)\n",
                static_cast<unsigned long long>(row.cache_hits),
                static_cast<unsigned long long>(row.cache_misses));
    return 0;
  }
  // Smoke: one repetition of a tiny mix at 1/2 workers -- enough to prove
  // the harness end to end in CI without owning the machine for minutes.
  if (smoke) runs = 1;
  const int requests = smoke ? 8 : 24;
  const int repeat_requests = smoke ? 20 : 200;
  const long think_ms = smoke ? 10 : 50;
  const std::vector<int> worker_counts =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 4, 8};
  const std::vector<int> cache_worker_counts =
      smoke ? std::vector<int>{1} : std::vector<int>{1, 4};

  // The cache contract first: a broken cache makes the throughput rows
  // meaningless.
  verify_hit_matches_cold();

  std::vector<Row> rows;
  double compute_1w_rps = 0.0;
  for (const char* scenario : {"compute", "mixed"}) {
    const long delay = std::strcmp(scenario, "mixed") == 0 ? think_ms : 0;
    const std::string input = make_input(requests, delay);
    double base_rps = 0.0;
    for (const int workers : worker_counts) {
      Row row = run_config(scenario, input, workers, requests, delay, runs);
      if (workers == 1) base_rps = row.throughput_rps;
      if (workers == 1 && std::strcmp(scenario, "compute") == 0)
        compute_1w_rps = row.throughput_rps;
      row.speedup = base_rps > 0.0 ? row.throughput_rps / base_rps : 1.0;
      std::printf("%-8s workers=%d  wall=%8.1f ms  %6.2f req/s  "
                  "p50=%7.1f  p95=%7.1f  p99=%7.1f  speedup=%.2fx\n",
                  row.scenario.c_str(), row.workers, row.wall_ms,
                  row.throughput_rps, row.p50_ms, row.p95_ms, row.p99_ms,
                  row.speedup);
      rows.push_back(std::move(row));
    }
  }

  const std::pair<const char*, int> repeat_scenarios[] = {{"repeat90", 10},
                                                          {"repeat98", 50}};
  for (const auto& [scenario, unique_every] : repeat_scenarios) {
    const std::string input = make_repeat_input(repeat_requests, unique_every);
    double base_rps = 0.0;
    for (const int workers : cache_worker_counts) {
      Row row =
          run_config(scenario, input, workers, repeat_requests, 0, runs);
      row.cache_scenario = true;
      if (workers == 1) base_rps = row.throughput_rps;
      row.speedup = base_rps > 0.0 ? row.throughput_rps / base_rps : 1.0;
      row.speedup_vs_compute_1w =
          compute_1w_rps > 0.0 ? row.throughput_rps / compute_1w_rps : 0.0;
      row.speedup_vs_pr4_baseline = row.throughput_rps / kPr4Compute1wBaselineRps;
      std::printf(
          "%-8s workers=%d  wall=%8.1f ms  %7.2f req/s  hits=%llu misses=%llu  "
          "hit p50/p95/p99=%5.2f/%5.2f/%5.2f ms  miss p50/p95/p99=%5.1f/%5.1f/"
          "%5.1f ms  vs compute-1w=%.1fx  vs pr4-baseline=%.1fx\n",
          row.scenario.c_str(), row.workers, row.wall_ms, row.throughput_rps,
          static_cast<unsigned long long>(row.cache_hits),
          static_cast<unsigned long long>(row.cache_misses), row.hit_p50_ms,
          row.hit_p95_ms, row.hit_p99_ms, row.miss_p50_ms, row.miss_p95_ms,
          row.miss_p99_ms, row.speedup_vs_compute_1w,
          row.speedup_vs_pr4_baseline);
      rows.push_back(std::move(row));
    }
  }

  std::ofstream out("BENCH_service.json");
  al::support::JsonWriter w(out);
  w.begin_object();
  w.kv("schema", "autolayout.bench.service");
  w.kv("schema_version", 2);  // v2: repeat90/repeat98 rows + cache fields
  w.kv("smoke", smoke);
  w.kv("hardware_concurrency",
       static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  w.kv("requests_per_run", requests);
  w.kv("repeat_requests_per_run", repeat_requests);
  w.kv("pr4_compute_1w_baseline_rps", kPr4Compute1wBaselineRps);
  w.kv("runs_per_config", runs);
  w.kv("mixed_think_ms", think_ms);
  w.key("corpus").begin_array();
  for (const TestCase& c : corpus_mix()) w.value(c.program);
  w.end_array();
  w.key("rows").begin_array();
  for (const Row& r : rows) {
    w.begin_object();
    w.kv("scenario", r.scenario);
    w.kv("workers", r.workers);
    w.kv("requests", r.requests);
    w.kv("delay_ms", r.delay_ms);
    w.kv("runs", r.runs);
    w.kv("wall_ms", r.wall_ms);
    w.kv("throughput_rps", r.throughput_rps);
    w.kv("latency_p50_ms", r.p50_ms);
    w.kv("latency_p95_ms", r.p95_ms);
    w.kv("latency_p99_ms", r.p99_ms);
    w.kv("latency_max_ms", r.max_ms);
    w.kv("speedup_vs_1_worker", r.speedup);
    if (r.cache_scenario) {
      w.kv("cache_hits", r.cache_hits);
      w.kv("cache_misses", r.cache_misses);
      w.kv("hit_latency_p50_ms", r.hit_p50_ms);
      w.kv("hit_latency_p95_ms", r.hit_p95_ms);
      w.kv("hit_latency_p99_ms", r.hit_p99_ms);
      w.kv("miss_latency_p50_ms", r.miss_p50_ms);
      w.kv("miss_latency_p95_ms", r.miss_p95_ms);
      w.kv("miss_latency_p99_ms", r.miss_p99_ms);
      w.kv("speedup_vs_compute_1_worker", r.speedup_vs_compute_1w);
      w.kv("speedup_vs_pr4_baseline", r.speedup_vs_pr4_baseline);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::printf("wrote BENCH_service.json\n");
  return 0;
}
