// Serving-layer throughput/latency baseline (DESIGN.md section 11): drives
// Server::run_batch over a 4-program corpus request mix at 1 / 4 / 8
// workers and writes the medians to BENCH_service.json (in the working
// directory). Two scenarios per worker count:
//
//   * compute -- every request is a real pipeline run, back to back. On a
//     multi-core host this is where worker scaling shows up; on a
//     single-core host (the CI container: hardware_concurrency is recorded
//     in the output) compute-bound throughput cannot exceed 1x and the
//     row documents exactly that.
//   * mixed   -- each request carries think-time (the protocol's delay_ms
//     field) alongside the compute, the shape of a layout service embedded
//     in a build system that interleaves I/O-bound work. Workers overlap
//     the waits, so this row demonstrates the concurrency the queue and
//     worker pool actually buy even when cores are scarce.
//
//   ./build/bench/service_bench [--smoke] [runs-per-config]  (default 3)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "corpus/corpus.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "support/json.hpp"

namespace {

using al::corpus::Dtype;
using al::corpus::TestCase;

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

std::vector<TestCase> corpus_mix() {
  return {{"adi", 32, Dtype::DoublePrecision, 4},
          {"erlebacher", 16, Dtype::DoublePrecision, 4},
          {"tomcatv", 32, Dtype::DoublePrecision, 4},
          {"shallow", 32, Dtype::Real, 4}};
}

/// NDJSON input of `count` requests round-robining over the corpus mix.
std::string make_input(int count, long delay_ms) {
  const std::vector<TestCase> mix = corpus_mix();
  std::string input;
  for (int i = 0; i < count; ++i) {
    const TestCase& c = mix[static_cast<std::size_t>(i) % mix.size()];
    std::ostringstream os;
    al::support::JsonWriter w(os, /*indent_width=*/-1);
    w.begin_object();
    w.kv("schema", al::service::kRequestSchema);
    w.kv("schema_version", al::service::kProtocolVersion);
    w.kv("id", c.program + "-" + std::to_string(i));
    w.kv("source", al::corpus::source_for(c));
    if (delay_ms > 0) w.kv("delay_ms", delay_ms);
    w.key("options").begin_object();
    w.kv("procs", c.procs);
    w.end_object();
    w.end_object();
    input += os.str();
  }
  return input;
}

struct Row {
  std::string scenario;
  int workers = 0;
  int requests = 0;
  long delay_ms = 0;
  int runs = 0;
  double wall_ms = 0.0;
  double throughput_rps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  double speedup = 1.0;  // vs the 1-worker row of the same scenario
};

Row run_config(const std::string& scenario, int workers, int requests,
               long delay_ms, int runs) {
  Row row;
  row.scenario = scenario;
  row.workers = workers;
  row.requests = requests;
  row.delay_ms = delay_ms;
  row.runs = runs;
  const std::string input = make_input(requests, delay_ms);

  std::vector<double> walls, p50s, p95s, p99s, maxs;
  for (int r = 0; r < runs; ++r) {
    al::service::ServerOptions opts;
    opts.workers = workers;
    opts.queue_capacity = static_cast<std::size_t>(requests) + 1;
    al::service::Server server(opts);
    std::istringstream in(input);
    std::ostringstream out;
    if (server.run_batch(in, out) != 0) {
      std::fprintf(stderr, "service_bench: batch run failed\n");
      std::exit(1);
    }
    const al::service::ServiceSummary s = server.summary();
    if (s.ok != static_cast<std::uint64_t>(requests)) {
      std::fprintf(stderr, "service_bench: %llu/%d requests ok\n",
                   static_cast<unsigned long long>(s.ok), requests);
      std::exit(1);
    }
    walls.push_back(s.wall_ms);
    p50s.push_back(s.p50_ms);
    p95s.push_back(s.p95_ms);
    p99s.push_back(s.p99_ms);
    maxs.push_back(s.max_ms);
  }
  row.wall_ms = median(walls);
  row.throughput_rps =
      row.wall_ms > 0.0 ? static_cast<double>(requests) / (row.wall_ms / 1e3) : 0.0;
  row.p50_ms = median(p50s);
  row.p95_ms = median(p95s);
  row.p99_ms = median(p99s);
  row.max_ms = median(maxs);
  return row;
}

} // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int runs = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      runs = std::max(1, std::atoi(argv[i]));
    }
  }
  // Smoke: one repetition of a tiny mix at 1/2 workers -- enough to prove
  // the harness end to end in CI without owning the machine for minutes.
  if (smoke) runs = 1;
  const int requests = smoke ? 8 : 24;
  const long think_ms = smoke ? 10 : 50;
  const std::vector<int> worker_counts =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 4, 8};

  std::vector<Row> rows;
  for (const char* scenario : {"compute", "mixed"}) {
    const long delay = std::strcmp(scenario, "mixed") == 0 ? think_ms : 0;
    double base_rps = 0.0;
    for (const int workers : worker_counts) {
      Row row = run_config(scenario, workers, requests, delay, runs);
      if (workers == 1) base_rps = row.throughput_rps;
      row.speedup = base_rps > 0.0 ? row.throughput_rps / base_rps : 1.0;
      std::printf("%-8s workers=%d  wall=%8.1f ms  %6.2f req/s  "
                  "p50=%7.1f  p95=%7.1f  p99=%7.1f  speedup=%.2fx\n",
                  row.scenario.c_str(), row.workers, row.wall_ms,
                  row.throughput_rps, row.p50_ms, row.p95_ms, row.p99_ms,
                  row.speedup);
      rows.push_back(std::move(row));
    }
  }

  std::ofstream out("BENCH_service.json");
  al::support::JsonWriter w(out);
  w.begin_object();
  w.kv("schema", "autolayout.bench.service");
  w.kv("schema_version", 1);
  w.kv("smoke", smoke);
  w.kv("hardware_concurrency",
       static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  w.kv("requests_per_run", requests);
  w.kv("runs_per_config", runs);
  w.kv("mixed_think_ms", think_ms);
  w.key("corpus").begin_array();
  for (const TestCase& c : corpus_mix()) w.value(c.program);
  w.end_array();
  w.key("rows").begin_array();
  for (const Row& r : rows) {
    w.begin_object();
    w.kv("scenario", r.scenario);
    w.kv("workers", r.workers);
    w.kv("requests", r.requests);
    w.kv("delay_ms", r.delay_ms);
    w.kv("runs", r.runs);
    w.kv("wall_ms", r.wall_ms);
    w.kv("throughput_rps", r.throughput_rps);
    w.kv("latency_p50_ms", r.p50_ms);
    w.kv("latency_p95_ms", r.p95_ms);
    w.kv("latency_p99_ms", r.p99_ms);
    w.kv("latency_max_ms", r.max_ms);
    w.kv("speedup_vs_1_worker", r.speedup);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::printf("wrote BENCH_service.json\n");
  return 0;
}
