// Serving-layer throughput/latency baseline (DESIGN.md sections 11 and 13):
// drives Server::run_batch over corpus request mixes and writes the medians
// to BENCH_service.json (in the working directory). Four scenarios:
//
//   * compute  -- every request is a real pipeline run, back to back. On a
//     multi-core host this is where worker scaling shows up; on a
//     single-core host (the CI container: hardware_concurrency is recorded
//     in the output) compute-bound throughput cannot exceed 1x and the
//     row documents exactly that.
//   * mixed    -- each request carries think-time (the protocol's delay_ms
//     field) alongside the compute, the shape of a layout service embedded
//     in a build system that interleaves I/O-bound work. Workers overlap
//     the waits, so this row demonstrates the concurrency the queue and
//     worker pool actually buy even when cores are scarce.
//   * repeat90 / repeat98 -- the whole-run result cache's scenarios: ~90%
//     (resp. ~98%) of requests repeat an already-submitted (program,
//     options) triple and are served from the cache, the rest are fresh
//     keys that must compute. Hit and miss latency quantiles are reported
//     separately, plus the throughput multiple over this run's compute
//     1-worker row (the cache's whole value proposition: repeats cost a
//     hash, not a pipeline).
//
// Before writing the report the bench VERIFIES the cache's contract: the
// report served by a hit must match a cold (fresh-server) run of the same
// request on every semantically meaningful section -- everything except the
// wall-clock/observability blocks (stages, estimator_cache occupancy,
// metrics, trace, selection solve time). A mismatch exits nonzero; the
// service.cache_smoke ctest runs exactly this under --smoke.
//
// The multi-process fleet (DESIGN.md section 17) gets its own scaling
// series: shard_compute and shard_repeat90 drive a 1/2/4-shard
// SO_REUSEPORT fleet over real loopback TCP with pipelined client
// connections, and record throughput next to the fleet's cross-shard
// cache hit rate (the shard_cache block of the fleet summary). On a
// single-core host the curve is flat for compute -- the row records
// hardware_concurrency so the number stays honest -- while the repeat mix
// shows what the shared segment buys: repeats hit fleet-wide no matter
// which shard the kernel picked.
//
//   ./build/bench/service_bench [--smoke] [--verify-cache] [--shard-smoke]
//                               [runs-per-config]
//   (default 3 runs per config; --verify-cache = contract check only, the
//   service.cache_smoke ctest; --shard-smoke = 2-shard fleet under a mixed
//   hit/miss load with the cross-shard single-compute gate, the
//   service.shard_smoke ctest)
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "corpus/corpus.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/shard.hpp"
#include "support/json.hpp"
#include "support/json_parse.hpp"
#include "support/text.hpp"

namespace {

using al::corpus::Dtype;
using al::corpus::TestCase;
using al::support::JsonValue;

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

std::vector<TestCase> corpus_mix() {
  return {{"adi", 32, Dtype::DoublePrecision, 4},
          {"erlebacher", 16, Dtype::DoublePrecision, 4},
          {"tomcatv", 32, Dtype::DoublePrecision, 4},
          {"shallow", 32, Dtype::Real, 4}};
}

std::string request_line(const TestCase& c, const std::string& id,
                         long delay_ms = 0) {
  std::ostringstream os;
  al::support::JsonWriter w(os, /*indent_width=*/-1);
  w.begin_object();
  w.kv("schema", al::service::kRequestSchema);
  w.kv("schema_version", al::service::kProtocolVersion);
  w.kv("id", id);
  w.kv("source", al::corpus::source_for(c));
  if (delay_ms > 0) w.kv("delay_ms", delay_ms);
  w.key("options").begin_object();
  w.kv("procs", c.procs);
  w.end_object();
  w.end_object();
  return os.str();
}

/// NDJSON input of `count` requests round-robining over the corpus mix.
std::string make_input(int count, long delay_ms) {
  const std::vector<TestCase> mix = corpus_mix();
  std::string input;
  for (int i = 0; i < count; ++i) {
    const TestCase& c = mix[static_cast<std::size_t>(i) % mix.size()];
    input += request_line(c, c.program + "-" + std::to_string(i), delay_ms);
  }
  return input;
}

/// Cache-scenario input: every `unique_every`-th request is a FRESH
/// (program, n, procs) triple nobody submitted before (a guaranteed cache
/// miss); everything else repeats the 4-program working set (hits once the
/// working set is warm). unique_every = 10 gives the ~90% repeat mix,
/// 50 the ~98% one.
std::string make_repeat_input(int count, int unique_every) {
  const std::vector<TestCase> mix = corpus_mix();
  std::string input;
  int fresh = 0;
  for (int i = 0; i < count; ++i) {
    if (i % unique_every == 0) {
      // Vary n and procs so every fresh request is a distinct cache key.
      const TestCase unique{"adi", 16 + 4 * (fresh / 14),
                            Dtype::DoublePrecision, 2 + fresh % 14};
      input += request_line(unique, "fresh-" + std::to_string(fresh));
      ++fresh;
    } else {
      const TestCase& c = mix[static_cast<std::size_t>(i) % mix.size()];
      input += request_line(c, c.program + "-" + std::to_string(i));
    }
  }
  return input;
}

struct Row {
  std::string scenario;
  int workers = 0;
  int requests = 0;
  long delay_ms = 0;
  int runs = 0;
  double wall_ms = 0.0;
  double throughput_rps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  double speedup = 1.0;  // vs the 1-worker row of the same scenario
  // Run-cache scenarios only:
  bool cache_scenario = false;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  double hit_p50_ms = 0.0, hit_p95_ms = 0.0, hit_p99_ms = 0.0;
  double miss_p50_ms = 0.0, miss_p95_ms = 0.0, miss_p99_ms = 0.0;
  double speedup_vs_compute_1w = 0.0;   // vs this run's compute 1-worker row
  double speedup_vs_pr4_baseline = 0.0; // vs the recorded PR-4 single-worker
                                        // compute baseline (the >= 10x target)
};

/// The committed single-worker compute throughput the run cache was built
/// against (BENCH_service.json before this change, hardware_concurrency 1).
constexpr double kPr4Compute1wBaselineRps = 79.66821032;

Row run_config(const std::string& scenario, const std::string& input,
               int workers, int requests, long delay_ms, int runs) {
  Row row;
  row.scenario = scenario;
  row.workers = workers;
  row.requests = requests;
  row.delay_ms = delay_ms;
  row.runs = runs;

  std::vector<double> walls, p50s, p95s, p99s, maxs;
  std::vector<double> hit50s, hit95s, hit99s, miss50s, miss95s, miss99s;
  for (int r = 0; r < runs; ++r) {
    al::service::ServerOptions opts;
    opts.workers = workers;
    opts.queue_capacity = static_cast<std::size_t>(requests) + 1;
    al::service::Server server(opts);
    std::istringstream in(input);
    std::ostringstream out;
    if (server.run_batch(in, out) != 0) {
      std::fprintf(stderr, "service_bench: batch run failed\n");
      std::exit(1);
    }
    const al::service::ServiceSummary s = server.summary();
    if (s.ok != static_cast<std::uint64_t>(requests)) {
      std::fprintf(stderr, "service_bench: %llu/%d requests ok\n",
                   static_cast<unsigned long long>(s.ok), requests);
      std::exit(1);
    }
    walls.push_back(s.wall_ms);
    p50s.push_back(s.p50_ms);
    p95s.push_back(s.p95_ms);
    p99s.push_back(s.p99_ms);
    maxs.push_back(s.max_ms);
    hit50s.push_back(s.hit_p50_ms);
    hit95s.push_back(s.hit_p95_ms);
    hit99s.push_back(s.hit_p99_ms);
    miss50s.push_back(s.miss_p50_ms);
    miss95s.push_back(s.miss_p95_ms);
    miss99s.push_back(s.miss_p99_ms);
    row.cache_hits = s.cache_hits;    // deterministic per input; last run's
    row.cache_misses = s.cache_misses;
  }
  row.wall_ms = median(walls);
  row.throughput_rps =
      row.wall_ms > 0.0 ? static_cast<double>(requests) / (row.wall_ms / 1e3) : 0.0;
  row.p50_ms = median(p50s);
  row.p95_ms = median(p95s);
  row.p99_ms = median(p99s);
  row.max_ms = median(maxs);
  row.hit_p50_ms = median(hit50s);
  row.hit_p95_ms = median(hit95s);
  row.hit_p99_ms = median(hit99s);
  row.miss_p50_ms = median(miss50s);
  row.miss_p95_ms = median(miss95s);
  row.miss_p99_ms = median(miss99s);
  return row;
}

// ---------------------------------------------------------------------------
// Hit-vs-cold verification
// ---------------------------------------------------------------------------

/// Canonical serialization of a report with the volatile (wall-clock and
/// observability) parts removed: the top-level stages/estimator_cache/
/// metrics/trace sections and the selection's solve_ms. What remains is the
/// semantic payload -- layouts, costs, provenance -- which a cache hit must
/// reproduce exactly.
void semantic_subset(const JsonValue& v, std::string& out, int depth = 0) {
  switch (v.kind()) {
    case JsonValue::Kind::Object: {
      out += '{';
      bool first = true;
      for (const auto& [key, val] : v.members()) {
        if (depth == 0 && (key == "stages" || key == "estimator_cache" ||
                           key == "counters" || key == "gauges" ||
                           key == "trace"))
          continue;
        if (key == "solve_ms") continue;
        if (!first) out += ',';
        first = false;
        out += '"';
        out += key;
        out += "\":";
        semantic_subset(val, out, depth + 1);
      }
      out += '}';
      return;
    }
    case JsonValue::Kind::Array: {
      out += '[';
      bool first = true;
      for (const JsonValue& item : v.items()) {
        if (!first) out += ',';
        first = false;
        semantic_subset(item, out, depth + 1);
      }
      out += ']';
      return;
    }
    case JsonValue::Kind::String:
      out += '"';
      out += al::support::JsonWriter::escape(v.as_string());
      out += '"';
      return;
    case JsonValue::Kind::Number:
      out += v.number_lexeme();
      return;
    case JsonValue::Kind::Bool:
      out += v.as_bool() ? "true" : "false";
      return;
    case JsonValue::Kind::Null:
      out += "null";
      return;
  }
}

/// One batch -> parsed responses in input order.
std::vector<JsonValue> run_lines(const std::string& input) {
  al::service::ServerOptions opts;
  opts.workers = 1;
  al::service::Server server(opts);
  std::istringstream in(input);
  std::ostringstream out;
  if (server.run_batch(in, out) != 0) {
    std::fprintf(stderr, "service_bench: verification batch failed\n");
    std::exit(1);
  }
  std::vector<JsonValue> docs;
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    JsonValue doc;
    std::string error;
    if (!JsonValue::parse(line, doc, error)) {
      std::fprintf(stderr, "service_bench: bad response JSON: %s\n", error.c_str());
      std::exit(1);
    }
    docs.push_back(std::move(doc));
  }
  return docs;
}

std::string report_subset(const JsonValue& response, const char* what) {
  const JsonValue* report = response.find("report");
  if (report == nullptr) {
    std::fprintf(stderr, "service_bench: %s response carries no report\n", what);
    std::exit(1);
  }
  std::string subset;
  semantic_subset(*report, subset);
  return subset;
}

/// The acceptance check: a hit-served report equals a COLD run's report
/// (fresh server, so a genuinely independent compute) on the semantic
/// subset, for every corpus program. Exits nonzero on any divergence.
void verify_hit_matches_cold() {
  for (const TestCase& c : corpus_mix()) {
    // Fresh server: one cold compute.
    const std::vector<JsonValue> cold = run_lines(request_line(c, "cold"));
    // Second fresh server: the same request twice; the repeat is the hit.
    const std::vector<JsonValue> pair =
        run_lines(request_line(c, "w") + request_line(c, "h"));
    if (cold.size() != 1 || pair.size() != 2) {
      std::fprintf(stderr, "service_bench: verification got %zu+%zu responses\n",
                   cold.size(), pair.size());
      std::exit(1);
    }
    const JsonValue* disposition = pair[1].find("cache");
    if (disposition == nullptr || disposition->as_string() != "hit") {
      std::fprintf(stderr, "service_bench: %s repeat was not served as a hit\n",
                   c.program.c_str());
      std::exit(1);
    }
    const std::string cold_subset = report_subset(cold[0], "cold");
    const std::string hit_subset = report_subset(pair[1], "hit");
    if (cold_subset != hit_subset) {
      // Leave the full payloads on disk for diagnosis.
      std::ofstream("cache_verify_cold.json") << cold_subset << '\n';
      std::ofstream("cache_verify_hit.json") << hit_subset << '\n';
      std::fprintf(stderr,
                   "service_bench: %s hit report DIVERGES from cold run "
                   "(full subsets in cache_verify_{cold,hit}.json)\n"
                   "  cold: %.200s...\n  hit:  %.200s...\n",
                   c.program.c_str(), cold_subset.c_str(), hit_subset.c_str());
      std::exit(1);
    }
    std::printf("verify   %-10s hit report == cold report (%zu bytes compared)\n",
                c.program.c_str(), cold_subset.size());
  }
}

// ---------------------------------------------------------------------------
// Shard fleet scaling (DESIGN.md section 17)
// ---------------------------------------------------------------------------

std::uint64_t num_at(const JsonValue* obj, std::string_view key) {
  if (obj == nullptr) return 0;
  const JsonValue* v = obj->find(key);
  return v != nullptr && v->is_number()
             ? static_cast<std::uint64_t>(v->as_double())
             : 0;
}

double dbl_at(const JsonValue* obj, std::string_view key) {
  if (obj == nullptr) return 0.0;
  const JsonValue* v = obj->find(key);
  return v != nullptr && v->is_number() ? v->as_double() : 0.0;
}

/// One pipelined loopback connection's worth of load: connect (with retries
/// -- right after start() the shard listeners may still be coming up), send
/// every line, read until the same number of response lines arrived. The
/// raw bytes are kept so ok-counting happens outside the timed region.
struct ClientSlice {
  std::string payload;
  int expected_lines = 0;
  std::string raw;
  int lines = 0;
};

void drive_slice(int port, ClientSlice& slice) {
  int fd = -1;
  for (int attempt = 0; attempt < 100; ++attempt) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0)
      break;
    ::close(fd);
    fd = -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  if (fd < 0) return;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  std::size_t off = 0;
  while (off < slice.payload.size()) {
    const ssize_t n = ::send(fd, slice.payload.data() + off,
                             slice.payload.size() - off, MSG_NOSIGNAL);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  char chunk[1 << 16];
  while (slice.lines < slice.expected_lines) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    for (ssize_t i = 0; i < n; ++i)
      if (chunk[i] == '\n') ++slice.lines;
    slice.raw.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
}

struct ShardRow {
  std::string scenario;
  int shards = 0;
  int clients = 0;
  int requests = 0;
  int runs = 0;
  double wall_ms = 0.0;        ///< client-measured: connect -> last response
  double throughput_rps = 0.0;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;  // merged-histogram fleet
  std::uint64_t cache_hits = 0, cache_misses = 0;
  double cache_hit_rate = 0.0;
  std::uint64_t shard_cache_hits = 0, shard_cache_fills = 0;
  double shard_cache_hit_rate = 0.0;
  std::string cache_mode;
  double speedup = 1.0;  ///< vs the 1-shard row of the same scenario
};

/// One fleet configuration: `runs` cold fleets, each driven by
/// 2*shards pipelined connections splitting `lines` round-robin. The wall
/// clock covers only the client drive (fleet startup/teardown excluded);
/// cache and latency stats come from the LAST run's fleet summary.
ShardRow run_shard_config(const std::string& scenario,
                          const std::vector<std::string>& lines, int shards,
                          int runs) {
  ShardRow row;
  row.scenario = scenario;
  row.shards = shards;
  row.requests = static_cast<int>(lines.size());
  row.runs = runs;
  const int nclients =
      std::min<int>(row.requests, std::max(2, 2 * shards));
  row.clients = nclients;

  std::vector<double> walls;
  for (int r = 0; r < runs; ++r) {
    std::vector<ClientSlice> slices(static_cast<std::size_t>(nclients));
    for (std::size_t i = 0; i < lines.size(); ++i) {
      ClientSlice& s = slices[i % static_cast<std::size_t>(nclients)];
      s.payload += lines[i];
      ++s.expected_lines;
    }

    al::service::ShardOptions sopts;
    sopts.shards = shards;
    sopts.server.workers = 1;
    sopts.server.queue_capacity = static_cast<std::size_t>(row.requests) + 1;
    sopts.server.grace_ms = 2'000;
    al::service::ShardSupervisor supervisor(sopts);
    if (!supervisor.start()) {
      std::fprintf(stderr, "service_bench: fleet start failed (%d shards)\n",
                   shards);
      std::exit(1);
    }
    int rc = -1;
    std::thread runner([&] { rc = supervisor.run(); });

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> drivers;
    drivers.reserve(slices.size());
    for (ClientSlice& s : slices)
      drivers.emplace_back(
          [&s, port = supervisor.port()] { drive_slice(port, s); });
    for (std::thread& t : drivers) t.join();
    const double wall = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

    supervisor.request_stop();
    runner.join();
    if (rc != 0) {
      std::fprintf(stderr, "service_bench: fleet run rc=%d (%d shards)\n", rc,
                   shards);
      std::exit(1);
    }
    int received = 0;
    for (const ClientSlice& s : slices) {
      received += s.lines;
      if (s.lines != s.expected_lines) {
        std::fprintf(stderr,
                     "service_bench: connection got %d/%d responses "
                     "(%d shards)\n",
                     s.lines, s.expected_lines, shards);
        std::exit(1);
      }
    }

    JsonValue summary;
    std::string error;
    if (!JsonValue::parse(supervisor.fleet_summary_json(-1), summary, error)) {
      std::fprintf(stderr, "service_bench: bad fleet summary: %s\n",
                   error.c_str());
      std::exit(1);
    }
    const JsonValue* requests = summary.find("requests");
    if (num_at(requests, "ok") != static_cast<std::uint64_t>(row.requests)) {
      std::fprintf(stderr,
                   "service_bench: fleet answered %llu/%d ok (%d shards)\n",
                   static_cast<unsigned long long>(num_at(requests, "ok")),
                   row.requests, shards);
      std::exit(1);
    }
    walls.push_back(wall);
    const JsonValue* cache = summary.find("cache");
    row.cache_hits = num_at(cache, "hits");
    row.cache_misses = num_at(cache, "misses");
    row.cache_hit_rate = dbl_at(cache, "hit_rate");
    const JsonValue* shard_cache = summary.find("shard_cache");
    row.shard_cache_hits = num_at(shard_cache, "hits");
    row.shard_cache_fills = num_at(shard_cache, "fills");
    row.shard_cache_hit_rate = dbl_at(shard_cache, "hit_rate");
    const JsonValue* mode = summary.find("cache_mode");
    row.cache_mode = mode != nullptr ? std::string(mode->as_string()) : "";
    const JsonValue* lat = summary.find("latency_ms");
    row.p50_ms = dbl_at(lat, "p50");
    row.p95_ms = dbl_at(lat, "p95");
    row.p99_ms = dbl_at(lat, "p99");
    (void)received;
  }
  row.wall_ms = median(walls);
  row.throughput_rps = row.wall_ms > 0.0
                           ? static_cast<double>(row.requests) /
                                 (row.wall_ms / 1e3)
                           : 0.0;
  return row;
}

/// The service.shard_smoke gate: a 2-shard fleet under a mixed hit/miss
/// load must (a) answer everything, (b) run in shared cache mode, and
/// (c) compute every distinct key exactly ONCE fleet-wide -- the number of
/// fleet misses equals the number of distinct keys in the load, no matter
/// how the kernel spread the connections. Exits nonzero on any violation.
int run_shard_smoke() {
  verify_hit_matches_cold();

  // 40 requests, 4 fresh singletons + the 4-program working set repeated:
  // 8 distinct keys, 32 guaranteed repeats.
  constexpr int kRequests = 40;
  constexpr int kDistinctKeys = 8;
  std::vector<std::string> lines;
  {
    std::istringstream in(make_repeat_input(kRequests, 10));
    std::string line;
    while (std::getline(in, line)) lines.push_back(line + "\n");
  }
  ShardRow row = run_shard_config("shard_smoke", lines, /*shards=*/2,
                                  /*runs=*/1);
  std::printf("shard_smoke  2 shards  %d requests over %d connections  "
              "%.1f ms  hits=%llu misses=%llu  mode=%s\n",
              row.requests, row.clients, row.wall_ms,
              static_cast<unsigned long long>(row.cache_hits),
              static_cast<unsigned long long>(row.cache_misses),
              row.cache_mode.c_str());
  if (row.cache_mode != "shared") {
    std::fprintf(stderr,
                 "service_bench: fleet cache mode is \"%s\", want shared\n",
                 row.cache_mode.c_str());
    return 1;
  }
  if (row.cache_misses != kDistinctKeys ||
      row.cache_hits != kRequests - kDistinctKeys) {
    std::fprintf(stderr,
                 "service_bench: cross-shard gate FAILED: %llu misses / %llu "
                 "hits, want exactly %d misses (one compute per distinct key "
                 "fleet-wide) and %d hits\n",
                 static_cast<unsigned long long>(row.cache_misses),
                 static_cast<unsigned long long>(row.cache_hits),
                 kDistinctKeys, kRequests - kDistinctKeys);
    return 1;
  }
  std::printf("cross-shard gate ok: %d distinct keys -> %llu computes, "
              "%llu repeat hits (shard_cache fills=%llu hits=%llu)\n",
              kDistinctKeys,
              static_cast<unsigned long long>(row.cache_misses),
              static_cast<unsigned long long>(row.cache_hits),
              static_cast<unsigned long long>(row.shard_cache_fills),
              static_cast<unsigned long long>(row.shard_cache_hits));
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  // Client sends race fleet teardown in the shard scenarios; an RST must
  // not kill the bench.
  std::signal(SIGPIPE, SIG_IGN);
  bool smoke = false;
  bool verify_only = false;
  bool shard_smoke = false;
  int runs = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--verify-cache") == 0) {
      // The service.cache_smoke ctest: just the hit-vs-cold contract plus a
      // tiny repeat mix, no BENCH_service.json rewrite.
      verify_only = true;
      smoke = true;
    } else if (std::strcmp(argv[i], "--shard-smoke") == 0) {
      // The service.shard_smoke ctest: hit-vs-cold contract + the 2-shard
      // cross-shard single-compute gate, no BENCH_service.json rewrite.
      shard_smoke = true;
    } else if (!al::parse_int(argv[i], 1, 1'000'000, runs)) {
      // Strict whole-lexeme parse: "3x" or "abc" is a usage error, not 3 or
      // a silent 1 the way atoi would have it.
      std::fprintf(stderr,
                   "usage: service_bench [--smoke] [--verify-cache] "
                   "[--shard-smoke] [runs]\n"
                   "  runs must be an integer in [1, 1000000], got \"%s\"\n",
                   argv[i]);
      return 1;
    }
  }
  if (shard_smoke) return run_shard_smoke();
  if (verify_only) {
    verify_hit_matches_cold();
    const int n = 20;
    Row row = run_config("repeat90", make_repeat_input(n, 10), 1, n, 0, 1);
    if (row.cache_hits == 0) {
      std::fprintf(stderr, "service_bench: repeat mix produced no cache hits\n");
      return 1;
    }
    std::printf("cache verification ok (%llu hits / %llu misses in repeat mix)\n",
                static_cast<unsigned long long>(row.cache_hits),
                static_cast<unsigned long long>(row.cache_misses));
    return 0;
  }
  // Smoke: one repetition of a tiny mix at 1/2 workers -- enough to prove
  // the harness end to end in CI without owning the machine for minutes.
  if (smoke) runs = 1;
  const int requests = smoke ? 8 : 24;
  const int repeat_requests = smoke ? 20 : 200;
  const long think_ms = smoke ? 10 : 50;
  const std::vector<int> worker_counts =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 4, 8};
  const std::vector<int> cache_worker_counts =
      smoke ? std::vector<int>{1} : std::vector<int>{1, 4};

  // The cache contract first: a broken cache makes the throughput rows
  // meaningless.
  verify_hit_matches_cold();

  std::vector<Row> rows;
  double compute_1w_rps = 0.0;
  for (const char* scenario : {"compute", "mixed"}) {
    const long delay = std::strcmp(scenario, "mixed") == 0 ? think_ms : 0;
    const std::string input = make_input(requests, delay);
    double base_rps = 0.0;
    for (const int workers : worker_counts) {
      Row row = run_config(scenario, input, workers, requests, delay, runs);
      if (workers == 1) base_rps = row.throughput_rps;
      if (workers == 1 && std::strcmp(scenario, "compute") == 0)
        compute_1w_rps = row.throughput_rps;
      row.speedup = base_rps > 0.0 ? row.throughput_rps / base_rps : 1.0;
      std::printf("%-8s workers=%d  wall=%8.1f ms  %6.2f req/s  "
                  "p50=%7.1f  p95=%7.1f  p99=%7.1f  speedup=%.2fx\n",
                  row.scenario.c_str(), row.workers, row.wall_ms,
                  row.throughput_rps, row.p50_ms, row.p95_ms, row.p99_ms,
                  row.speedup);
      rows.push_back(std::move(row));
    }
  }

  const std::pair<const char*, int> repeat_scenarios[] = {{"repeat90", 10},
                                                          {"repeat98", 50}};
  for (const auto& [scenario, unique_every] : repeat_scenarios) {
    const std::string input = make_repeat_input(repeat_requests, unique_every);
    double base_rps = 0.0;
    for (const int workers : cache_worker_counts) {
      Row row =
          run_config(scenario, input, workers, repeat_requests, 0, runs);
      row.cache_scenario = true;
      if (workers == 1) base_rps = row.throughput_rps;
      row.speedup = base_rps > 0.0 ? row.throughput_rps / base_rps : 1.0;
      row.speedup_vs_compute_1w =
          compute_1w_rps > 0.0 ? row.throughput_rps / compute_1w_rps : 0.0;
      row.speedup_vs_pr4_baseline = row.throughput_rps / kPr4Compute1wBaselineRps;
      std::printf(
          "%-8s workers=%d  wall=%8.1f ms  %7.2f req/s  hits=%llu misses=%llu  "
          "hit p50/p95/p99=%5.2f/%5.2f/%5.2f ms  miss p50/p95/p99=%5.1f/%5.1f/"
          "%5.1f ms  vs compute-1w=%.1fx  vs pr4-baseline=%.1fx\n",
          row.scenario.c_str(), row.workers, row.wall_ms, row.throughput_rps,
          static_cast<unsigned long long>(row.cache_hits),
          static_cast<unsigned long long>(row.cache_misses), row.hit_p50_ms,
          row.hit_p95_ms, row.hit_p99_ms, row.miss_p50_ms, row.miss_p95_ms,
          row.miss_p99_ms, row.speedup_vs_compute_1w,
          row.speedup_vs_pr4_baseline);
      rows.push_back(std::move(row));
    }
  }

  // The fleet scaling series: the same compute and repeat90 mixes, but over
  // real loopback TCP against a 1/2/4-shard SO_REUSEPORT fleet (1 worker
  // per shard, so the curve isolates process scaling).
  const std::vector<int> shard_counts =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4};
  std::vector<ShardRow> shard_rows;
  const std::pair<const char*, bool> shard_scenarios[] = {
      {"shard_compute", false}, {"shard_repeat90", true}};
  for (const auto& [scenario, repeat_mix] : shard_scenarios) {
    std::vector<std::string> lines;
    {
      std::istringstream in(repeat_mix ? make_repeat_input(repeat_requests, 10)
                                       : make_input(requests, 0));
      std::string line;
      while (std::getline(in, line)) lines.push_back(line + "\n");
    }
    double base_rps = 0.0;
    for (const int shards : shard_counts) {
      ShardRow row = run_shard_config(scenario, lines, shards, runs);
      if (shards == 1) base_rps = row.throughput_rps;
      row.speedup = base_rps > 0.0 ? row.throughput_rps / base_rps : 1.0;
      std::printf("%-14s shards=%d  wall=%8.1f ms  %7.2f req/s  "
                  "p50=%6.2f p95=%6.2f  cache hit_rate=%.2f  "
                  "shard_cache hits=%llu fills=%llu  speedup=%.2fx\n",
                  row.scenario.c_str(), row.shards, row.wall_ms,
                  row.throughput_rps, row.p50_ms, row.p95_ms,
                  row.cache_hit_rate,
                  static_cast<unsigned long long>(row.shard_cache_hits),
                  static_cast<unsigned long long>(row.shard_cache_fills),
                  row.speedup);
      shard_rows.push_back(std::move(row));
    }
  }

  std::ofstream out("BENCH_service.json");
  al::support::JsonWriter w(out);
  w.begin_object();
  w.kv("schema", "autolayout.bench.service");
  w.kv("schema_version", 3);  // v2: repeat90/repeat98 rows + cache fields;
                              // v3: shard_rows fleet scaling series
  w.kv("smoke", smoke);
  w.kv("hardware_concurrency",
       static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  w.kv("requests_per_run", requests);
  w.kv("repeat_requests_per_run", repeat_requests);
  w.kv("pr4_compute_1w_baseline_rps", kPr4Compute1wBaselineRps);
  w.kv("runs_per_config", runs);
  w.kv("mixed_think_ms", think_ms);
  w.key("corpus").begin_array();
  for (const TestCase& c : corpus_mix()) w.value(c.program);
  w.end_array();
  w.key("rows").begin_array();
  for (const Row& r : rows) {
    w.begin_object();
    w.kv("scenario", r.scenario);
    w.kv("workers", r.workers);
    w.kv("requests", r.requests);
    w.kv("delay_ms", r.delay_ms);
    w.kv("runs", r.runs);
    w.kv("wall_ms", r.wall_ms);
    w.kv("throughput_rps", r.throughput_rps);
    w.kv("latency_p50_ms", r.p50_ms);
    w.kv("latency_p95_ms", r.p95_ms);
    w.kv("latency_p99_ms", r.p99_ms);
    w.kv("latency_max_ms", r.max_ms);
    w.kv("speedup_vs_1_worker", r.speedup);
    if (r.cache_scenario) {
      w.kv("cache_hits", r.cache_hits);
      w.kv("cache_misses", r.cache_misses);
      w.kv("hit_latency_p50_ms", r.hit_p50_ms);
      w.kv("hit_latency_p95_ms", r.hit_p95_ms);
      w.kv("hit_latency_p99_ms", r.hit_p99_ms);
      w.kv("miss_latency_p50_ms", r.miss_p50_ms);
      w.kv("miss_latency_p95_ms", r.miss_p95_ms);
      w.kv("miss_latency_p99_ms", r.miss_p99_ms);
      w.kv("speedup_vs_compute_1_worker", r.speedup_vs_compute_1w);
      w.kv("speedup_vs_pr4_baseline", r.speedup_vs_pr4_baseline);
    }
    w.end_object();
  }
  w.end_array();
  w.key("shard_rows").begin_array();
  for (const ShardRow& r : shard_rows) {
    w.begin_object();
    w.kv("scenario", r.scenario);
    w.kv("shards", r.shards);
    w.kv("client_connections", r.clients);
    w.kv("requests", r.requests);
    w.kv("runs", r.runs);
    w.kv("wall_ms", r.wall_ms);
    w.kv("throughput_rps", r.throughput_rps);
    w.kv("latency_p50_ms", r.p50_ms);
    w.kv("latency_p95_ms", r.p95_ms);
    w.kv("latency_p99_ms", r.p99_ms);
    w.kv("cache_mode", r.cache_mode);
    w.kv("cache_hits", r.cache_hits);
    w.kv("cache_misses", r.cache_misses);
    w.kv("cache_hit_rate", r.cache_hit_rate);
    w.kv("shard_cache_hits", r.shard_cache_hits);
    w.kv("shard_cache_fills", r.shard_cache_fills);
    w.kv("shard_cache_hit_rate", r.shard_cache_hit_rate);
    w.kv("speedup_vs_1_shard", r.speedup);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::printf("wrote BENCH_service.json\n");
  return 0;
}
